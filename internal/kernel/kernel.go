// Package kernel provides the embedded specification API for scalar
// kernels, playing the role of the paper's Racket-embedded input DSL
// (§3.1). A kernel is written as ordinary Go code over symbolic scalar
// values; running it *is* symbolic evaluation, and the result is the lifted
// specification in the vector DSL: one expression tree per output element.
//
// Arbitrarily complex indexing and control flow are allowed as long as they
// are independent of the input data — which is guaranteed here by
// construction, because indices are plain Go ints while data values are
// opaque symbolic scalars.
package kernel

import (
	"fmt"

	"diospyros/internal/expr"
)

// ArrayDecl describes an input or output array. Cols is 1 for vectors;
// a scalar is declared as a 1×1 array.
type ArrayDecl struct {
	Name string
	Rows int
	Cols int
}

// Len returns the flattened element count.
func (d ArrayDecl) Len() int { return d.Rows * d.Cols }

// Lifted is a kernel specification after symbolic evaluation: a List term
// with one scalar expression per output element, plus shape metadata the
// backend needs for loads/stores.
type Lifted struct {
	Name    string
	Spec    *expr.Expr // (List e0 e1 ...)
	Inputs  []ArrayDecl
	Outputs []ArrayDecl
}

// OutputLen is the number of scalar outputs (before zero padding).
func (l *Lifted) OutputLen() int {
	n := 0
	for _, d := range l.Outputs {
		n += d.Len()
	}
	return n
}

// InputLen is the total number of scalar inputs.
func (l *Lifted) InputLen() int {
	n := 0
	for _, d := range l.Inputs {
		n += d.Len()
	}
	return n
}

// Builder accumulates a kernel during symbolic evaluation.
type Builder struct {
	name    string
	inputs  []ArrayDecl
	outputs []ArrayDecl
	inSet   map[string]bool
	outMats []*Matrix
}

// NewBuilder starts a kernel specification with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, inSet: map[string]bool{}}
}

// Scalar is a symbolic scalar value. Arithmetic helpers build DSL
// expressions with light peephole simplification so that the lifted spec
// matches the paper's examples (no `+ 0` noise from accumulator
// initialization).
type Scalar struct {
	e *expr.Expr
}

// Expr returns the underlying DSL expression.
func (s Scalar) Expr() *expr.Expr { return s.e }

// Const wraps a literal constant.
func Const(v float64) Scalar { return Scalar{expr.Lit(v)} }

// Matrix is a 2-D (or 1-D when Cols==1) symbolic array. Input matrices
// read as Get terms; output matrices are write-then-read accumulators.
type Matrix struct {
	decl   ArrayDecl
	input  bool
	elems  []Scalar // outputs only
	filled []bool
}

// Decl returns the matrix's declaration.
func (m *Matrix) Decl() ArrayDecl { return m.decl }

// Input declares an input matrix.
func (b *Builder) Input(name string, rows, cols int) *Matrix {
	b.checkName(name)
	d := ArrayDecl{Name: name, Rows: rows, Cols: cols}
	b.inputs = append(b.inputs, d)
	return &Matrix{decl: d, input: true}
}

// InputVec declares an input vector (n×1).
func (b *Builder) InputVec(name string, n int) *Matrix { return b.Input(name, n, 1) }

// Output declares an output matrix, initialized to zeros (matching the
// make-vector initialization in the paper's input language).
func (b *Builder) Output(name string, rows, cols int) *Matrix {
	b.checkName(name)
	d := ArrayDecl{Name: name, Rows: rows, Cols: cols}
	b.outputs = append(b.outputs, d)
	m := &Matrix{decl: d, elems: make([]Scalar, d.Len()), filled: make([]bool, d.Len())}
	for i := range m.elems {
		m.elems[i] = Const(0)
	}
	b.outMats = append(b.outMats, m)
	return m
}

// OutputVec declares an output vector (n×1).
func (b *Builder) OutputVec(name string, n int) *Matrix { return b.Output(name, n, 1) }

func (b *Builder) checkName(name string) {
	if b.inSet[name] {
		panic(fmt.Sprintf("kernel %s: duplicate array %q", b.name, name))
	}
	b.inSet[name] = true
}

// At reads element (i, j).
func (m *Matrix) At(i, j int) Scalar {
	idx := m.flat(i, j)
	if m.input {
		return Scalar{expr.Get(m.decl.Name, idx)}
	}
	return m.elems[idx]
}

// AtVec reads element i of a vector.
func (m *Matrix) AtVec(i int) Scalar { return m.At(i, 0) }

// Set writes element (i, j). Only output matrices are writable.
func (m *Matrix) Set(i, j int, v Scalar) {
	if m.input {
		panic(fmt.Sprintf("kernel: write to input array %q", m.decl.Name))
	}
	idx := m.flat(i, j)
	m.elems[idx] = v
	m.filled[idx] = true
}

// SetVec writes element i of a vector.
func (m *Matrix) SetVec(i int, v Scalar) { m.Set(i, 0, v) }

func (m *Matrix) flat(i, j int) int {
	if i < 0 || i >= m.decl.Rows || j < 0 || j >= m.decl.Cols {
		panic(fmt.Sprintf("kernel: index (%d,%d) out of bounds for %s[%d][%d]",
			i, j, m.decl.Name, m.decl.Rows, m.decl.Cols))
	}
	return i*m.decl.Cols + j
}

// Lift finalizes the kernel: the specification is the List of all output
// elements, in declaration order, row-major.
func (b *Builder) Lift() *Lifted {
	var elems []*expr.Expr
	for _, m := range b.outMats {
		for _, s := range m.elems {
			elems = append(elems, s.e)
		}
	}
	if len(elems) == 0 {
		panic(fmt.Sprintf("kernel %s: no outputs declared", b.name))
	}
	return &Lifted{
		Name:    b.name,
		Spec:    expr.List(elems...),
		Inputs:  b.inputs,
		Outputs: b.outputs,
	}
}

// Arithmetic over symbolic scalars, with peephole simplification (constant
// folding and identity elimination). The simplifications are sound over ℝ,
// matching the rewrite system's semantics.

// Add returns a+b.
func Add(a, b Scalar) Scalar {
	switch {
	case a.e.IsZero():
		return b
	case b.e.IsZero():
		return a
	case a.e.Op == expr.OpLit && b.e.Op == expr.OpLit:
		return Const(a.e.Lit + b.e.Lit)
	}
	return Scalar{expr.Add(a.e, b.e)}
}

// Sub returns a−b.
func Sub(a, b Scalar) Scalar {
	switch {
	case b.e.IsZero():
		return a
	case a.e.Op == expr.OpLit && b.e.Op == expr.OpLit:
		return Const(a.e.Lit - b.e.Lit)
	}
	return Scalar{expr.Sub(a.e, b.e)}
}

// Mul returns a×b.
func Mul(a, b Scalar) Scalar {
	switch {
	case a.e.IsZero() || b.e.IsZero():
		return Const(0)
	case a.e.IsLit(1):
		return b
	case b.e.IsLit(1):
		return a
	case a.e.Op == expr.OpLit && b.e.Op == expr.OpLit:
		return Const(a.e.Lit * b.e.Lit)
	}
	return Scalar{expr.Mul(a.e, b.e)}
}

// DivS returns a÷b.
func DivS(a, b Scalar) Scalar {
	if b.e.IsLit(1) {
		return a
	}
	if a.e.Op == expr.OpLit && b.e.Op == expr.OpLit && b.e.Lit != 0 {
		return Const(a.e.Lit / b.e.Lit)
	}
	return Scalar{expr.Div(a.e, b.e)}
}

// NegS returns −a.
func NegS(a Scalar) Scalar {
	if a.e.Op == expr.OpLit {
		return Const(-a.e.Lit)
	}
	return Scalar{expr.Neg(a.e)}
}

// SqrtS returns √a.
func SqrtS(a Scalar) Scalar {
	if a.e.Op == expr.OpLit && a.e.Lit >= 0 {
		v := a.e.Lit
		if v == 0 || v == 1 {
			return Const(v)
		}
	}
	return Scalar{expr.Sqrt(a.e)}
}

// SgnS returns sgn(a) (−1 for negative, +1 otherwise).
func SgnS(a Scalar) Scalar {
	if a.e.Op == expr.OpLit {
		return Const(expr.Sign(a.e.Lit))
	}
	return Scalar{expr.Sgn(a.e)}
}

// Call applies an uninterpreted user-defined function (§3.1).
func Call(name string, args ...Scalar) Scalar {
	es := make([]*expr.Expr, len(args))
	for i, a := range args {
		es[i] = a.e
	}
	return Scalar{expr.Func(name, es...)}
}
