package kernel

import (
	"testing"

	"diospyros/internal/expr"
)

func TestBuilderLiftShapes(t *testing.T) {
	b := NewBuilder("shapes")
	b.Input("a", 2, 3)
	b.InputVec("v", 5)
	out := b.Output("o", 2, 2)
	out2 := b.OutputVec("w", 3)
	out.Set(1, 1, Const(7))
	out2.SetVec(2, Const(9))
	l := b.Lift()
	if l.Name != "shapes" {
		t.Fatalf("name = %q", l.Name)
	}
	if l.InputLen() != 6+5 || l.OutputLen() != 4+3 {
		t.Fatalf("lens = %d, %d", l.InputLen(), l.OutputLen())
	}
	if len(l.Spec.Args) != 7 {
		t.Fatalf("spec has %d elements", len(l.Spec.Args))
	}
	// Unwritten output elements default to 0; written ones carry values.
	if !l.Spec.Args[3].IsLit(7) || !l.Spec.Args[6].IsLit(9) || !l.Spec.Args[0].IsZero() {
		t.Fatalf("spec = %s", l.Spec)
	}
}

func TestInputReadsAreGets(t *testing.T) {
	b := NewBuilder("gets")
	a := b.Input("a", 2, 3)
	o := b.OutputVec("o", 1)
	o.SetVec(0, a.At(1, 2))
	l := b.Lift()
	want := expr.Get("a", 1*3+2)
	if !l.Spec.Args[0].Equal(want) {
		t.Fatalf("got %s, want %s", l.Spec.Args[0], want)
	}
}

func TestAccumulatorReadBack(t *testing.T) {
	// Outputs are readable accumulators: o += x twice yields (+ x x) after
	// peephole (0 + x = x).
	b := NewBuilder("acc")
	a := b.InputVec("a", 1)
	o := b.OutputVec("o", 1)
	o.SetVec(0, Add(o.AtVec(0), a.AtVec(0)))
	o.SetVec(0, Add(o.AtVec(0), a.AtVec(0)))
	l := b.Lift()
	if got := l.Spec.Args[0].String(); got != "(+ (Get a 0) (Get a 0))" {
		t.Fatalf("accumulated spec = %s", got)
	}
}

func TestScalarHelpers(t *testing.T) {
	b := NewBuilder("helpers")
	a := b.InputVec("a", 2)
	x, y := a.AtVec(0), a.AtVec(1)
	cases := []struct {
		got  Scalar
		want string
	}{
		{Sub(x, y), "(- (Get a 0) (Get a 1))"},
		{Sub(x, Const(0)), "(Get a 0)"},
		{DivS(x, y), "(/ (Get a 0) (Get a 1))"},
		{DivS(x, Const(1)), "(Get a 0)"},
		{DivS(Const(6), Const(3)), "2"},
		{NegS(x), "(neg (Get a 0))"},
		{NegS(Const(2)), "-2"},
		{SqrtS(x), "(sqrt (Get a 0))"},
		{SqrtS(Const(0)), "0"},
		{SqrtS(Const(1)), "1"},
		{SgnS(x), "(sgn (Get a 0))"},
		{SgnS(Const(-3)), "-1"},
		{SgnS(Const(0)), "1"},
		{Mul(Const(2), Const(3)), "6"},
	}
	for _, c := range cases {
		if got := c.got.Expr().String(); got != c.want {
			t.Errorf("got %s, want %s", got, c.want)
		}
	}
}

func TestArrayDeclLen(t *testing.T) {
	if (ArrayDecl{Name: "x", Rows: 3, Cols: 4}).Len() != 12 {
		t.Fatal("Len wrong")
	}
}
