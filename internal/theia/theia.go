// Package theia reproduces the paper's application case study (§5.7): the
// camera-model initialization of the Theia structure-from-motion library.
// DecomposeProjectionMatrix takes a 3×4 projection matrix P and recovers
// the calibration matrix K, the rotation R, and the camera center c:
//
//   - K and R come from an RQ decomposition of the left 3×3 block M, whose
//     core is a 3×3 Householder QR;
//   - the rotation estimate is projected onto SO(3) with a Jacobi SVD
//     (cheap here, since the input is already near-orthogonal);
//   - the center solves M·c = −p₄, again via a 3×3 QR plus back
//     substitution.
//
// The 3×3 QR is thus the hot small fixed-size kernel of the computation —
// the one the paper swaps for a Diospyros-compiled version to obtain its
// end-to-end speedup. The whole pipeline runs on the FG3-lite simulator;
// VariantEigen uses the portable scalar library QR (with Eigen's
// stable-norm numerics), VariantDiospyros the equality-saturation-compiled
// kernel.
package theia

import (
	"fmt"
	"math"
	"sync"

	diospyros "diospyros"
	"diospyros/internal/eigenlite"
	"diospyros/internal/kcc"
	"diospyros/internal/kernels"
	"diospyros/internal/sim"
)

// Variant selects the implementation of the 3×3 QR kernel.
type Variant int

const (
	// VariantEigen uses the portable scalar library QR.
	VariantEigen Variant = iota
	// VariantDiospyros uses the equality-saturation-compiled QR.
	VariantDiospyros
)

func (v Variant) String() string {
	if v == VariantDiospyros {
		return "diospyros"
	}
	return "eigen"
}

// Result is a decomposition with its simulated cost breakdown.
type Result struct {
	K      []float64 // 3×3 calibration, upper triangular, K[2][2] = 1
	R      []float64 // 3×3 rotation
	Center []float64 // camera center (3)

	TotalCycles int64
	QRCycles    int64 // cycles spent in the two 3×3 QR calls
	StepCycles  map[string]int64
}

const extract3Src = `
kernel extract3(p[3][4]) -> (m[3][3]) {
    for i in 0..3 {
        for j in 0..3 {
            m[i][j] = p[i][j];
        }
    }
}
`

const rqpreSrc = `
kernel rqpre(p[3][4]) -> (mt[3][3]) {
    for i in 0..3 {
        for j in 0..3 {
            mt[i][j] = p[2-j][i];
        }
    }
}
`

const rqpostSrc = `
kernel rqpost(q[3][3], r[3][3]) -> (kk[3][3], rot[3][3]) {
    for i in 0..3 {
        for j in 0..3 {
            kk[i][j] = r[2-j][2-i];
            rot[i][j] = q[j][2-i];
        }
    }
    for d in 0..3 {
        if kk[d][d] < 0.0 {
            for i in 0..3 {
                kk[i][d] = 0.0 - kk[i][d];
                rot[d][i] = 0.0 - rot[d][i];
            }
        }
    }
    let s = kk[2][2];
    for i in 0..3 {
        for j in 0..3 {
            kk[i][j] = kk[i][j] / s;
        }
    }
}
`

// gramSrc computes A = R₀ᵀ·R₀ for the rotation projection.
const gramSrc = `
kernel gram(r0[3][3]) -> (a[3][3]) {
    for i in 0..3 {
        for j in 0..3 {
            let acc = 0.0;
            for k in 0..3 {
                acc = acc + r0[k][i] * r0[k][j];
            }
            a[i][j] = acc;
        }
    }
}
`

// rotprojSrc projects R₀ onto SO(3): R = R₀·V·diag(1/√λ)·Vᵀ where
// (λ, V) eigendecompose R₀ᵀR₀ (equivalently R = U·Vᵀ from the SVD of R₀).
const rotprojSrc = `
kernel rotproj(r0[3][3], vals[3], vecs[3][3]) -> (rot[3][3]) {
    var w[3][3];
    for i in 0..3 {
        for j in 0..3 {
            let acc = 0.0;
            for k in 0..3 {
                acc = acc + vecs[i][k] * vecs[j][k] / sqrt(vals[k]);
            }
            w[i][j] = acc;
        }
    }
    for i in 0..3 {
        for j in 0..3 {
            let acc = 0.0;
            for k in 0..3 {
                acc = acc + r0[i][k] * w[k][j];
            }
            rot[i][j] = acc;
        }
    }
}
`

// backsubSrc solves M·c = −p₄ given M = Q·R: y = −Qᵀ·p₄, then back
// substitution through upper-triangular R.
const backsubSrc = `
kernel backsub(q[3][3], r[3][3], p[3][4]) -> (c[3]) {
    var y[3];
    for i in 0..3 {
        let acc = 0.0;
        for k in 0..3 {
            acc = acc - q[k][i] * p[k][3];
        }
        y[i] = acc;
    }
    c[2] = y[2] / r[2][2];
    c[1] = (y[1] - r[1][2]*c[2]) / r[1][1];
    c[0] = (y[0] - r[0][1]*c[1] - r[0][2]*c[2]) / r[0][0];
}
`

// pipeline holds the compiled routines, built once.
type pipeline struct {
	extract3, rqpre, rqpost        *eigenlite.Routine
	gram, jacobi, rotproj, backsub *eigenlite.Routine
	eigenQR                        *eigenlite.Routine
	diosQR                         *diospyros.Result
}

var (
	pipeOnce sync.Once
	pipe     *pipeline
	pipeErr  error
)

func getPipeline() (*pipeline, error) {
	pipeOnce.Do(func() {
		p := &pipeline{}
		steps := []struct {
			dst **eigenlite.Routine
			src string
		}{
			{&p.extract3, extract3Src},
			{&p.rqpre, rqpreSrc},
			{&p.rqpost, rqpostSrc},
			{&p.gram, gramSrc},
			{&p.jacobi, eigenlite.JacobiSrc(3)},
			{&p.rotproj, rotprojSrc},
			{&p.backsub, backsubSrc},
			{&p.eigenQR, eigenlite.QRSrc(3)},
		}
		for _, s := range steps {
			rt, err := eigenlite.Build(s.src, kcc.Parametric)
			if err != nil {
				pipeErr = err
				return
			}
			*s.dst = rt
		}
		res, err := diospyros.Compile(kernels.QRDecomp(3), diospyros.Options{})
		if err != nil {
			pipeErr = err
			return
		}
		p.diosQR = res
		pipe = p
	})
	return pipe, pipeErr
}

// Decompose runs DecomposeProjectionMatrix on the simulator.
func Decompose(p []float64, variant Variant) (*Result, error) {
	if len(p) != 12 {
		return nil, fmt.Errorf("theia: projection matrix must be 3×4 (12 elements), got %d", len(p))
	}
	pl, err := getPipeline()
	if err != nil {
		return nil, err
	}
	res := &Result{StepCycles: map[string]int64{}}
	add := func(name string, s *sim.Result) {
		res.StepCycles[name] += s.Cycles
		res.TotalCycles += s.Cycles
	}
	qr := func(a []float64) (q, r []float64, err error) {
		if variant == VariantDiospyros {
			outs, sres, err := pl.diosQR.Run(map[string][]float64{"a": a}, nil)
			if err != nil {
				return nil, nil, err
			}
			add("qr3x3", sres)
			res.QRCycles += sres.Cycles
			return outs["q"], outs["r"], nil
		}
		outs, sres, err := pl.eigenQR.Run(map[string][]float64{"a": a})
		if err != nil {
			return nil, nil, err
		}
		add("qr3x3", sres)
		res.QRCycles += sres.Cycles
		return outs["q"], outs["r"], nil
	}

	// 1. RQ decomposition of the left 3×3 block.
	pre, s, err := pl.rqpre.Run(map[string][]float64{"p": p})
	if err != nil {
		return nil, err
	}
	add("rq-permute", s)
	q1, r1, err := qr(pre["mt"])
	if err != nil {
		return nil, err
	}
	post, s, err := pl.rqpost.Run(map[string][]float64{"q": q1, "r": r1})
	if err != nil {
		return nil, err
	}
	add("rq-post", s)
	res.K = post["kk"]

	// 2. Project the rotation estimate onto SO(3) (Jacobi SVD step).
	g, s, err := pl.gram.Run(map[string][]float64{"r0": post["rot"]})
	if err != nil {
		return nil, err
	}
	add("gram", s)
	eig, s, err := pl.jacobi.Run(map[string][]float64{"a": g["a"]})
	if err != nil {
		return nil, err
	}
	add("jacobi-svd", s)
	rp, s, err := pl.rotproj.Run(map[string][]float64{
		"r0": post["rot"], "vals": eig["vals"], "vecs": eig["vecs"]})
	if err != nil {
		return nil, err
	}
	add("rot-project", s)
	res.R = rp["rot"]

	// 3. Camera center: solve M·c = −p₄ via a second QR.
	m3, s, err := pl.extract3.Run(map[string][]float64{"p": p})
	if err != nil {
		return nil, err
	}
	add("extract", s)
	q2, r2, err := qr(m3["m"])
	if err != nil {
		return nil, err
	}
	bs, s, err := pl.backsub.Run(map[string][]float64{"q": q2, "r": r2, "p": p})
	if err != nil {
		return nil, err
	}
	add("back-substitute", s)
	res.Center = bs["c"]
	return res, nil
}

// DecomposeRef is the host float64 reference of the same computation.
func DecomposeRef(p []float64) (k, r, center []float64) {
	// RQ of the left 3×3 block.
	mm := make([]float64, 9)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			mm[i*3+j] = p[i*4+j]
		}
	}
	k, r0 := eigenlite.RQ3x3Ref(mm, func(a []float64) ([]float64, []float64) {
		return kernels.QRDecompRef(3, a)
	})
	for d := 0; d < 3; d++ {
		if k[d*3+d] < 0 {
			for i := 0; i < 3; i++ {
				k[i*3+d] = -k[i*3+d]
				r0[d*3+i] = -r0[d*3+i]
			}
		}
	}
	s := k[8]
	for i := range k {
		k[i] /= s
	}

	// Rotation projection R = R0 · V · diag(1/√λ) · Vᵀ, (λ,V) from R0ᵀR0.
	gram := make([]float64, 9)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for kk := 0; kk < 3; kk++ {
				gram[i*3+j] += r0[kk*3+i] * r0[kk*3+j]
			}
		}
	}
	vals, vecs := eigenlite.JacobiEigenRef(3, gram)
	w := make([]float64, 9)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for kk := 0; kk < 3; kk++ {
				w[i*3+j] += vecs[i*3+kk] * vecs[j*3+kk] / math.Sqrt(vals[kk])
			}
		}
	}
	r = make([]float64, 9)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for kk := 0; kk < 3; kk++ {
				r[i*3+j] += r0[i*3+kk] * w[kk*3+j]
			}
		}
	}

	// Center: M·c = −p₄ by QR + back substitution.
	q2, r2 := kernels.QRDecompRef(3, mm)
	y := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for kk := 0; kk < 3; kk++ {
			y[i] -= q2[kk*3+i] * p[kk*4+3]
		}
	}
	center = make([]float64, 3)
	center[2] = y[2] / r2[8]
	center[1] = (y[1] - r2[5]*center[2]) / r2[4]
	center[0] = (y[0] - r2[1]*center[1] - r2[2]*center[2]) / r2[0]
	return k, r, center
}
