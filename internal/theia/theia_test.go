package theia

import (
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/kernels"
)

// randProjection builds a realistic projection matrix P = K·[R | -R·c].
func randProjection(r *rand.Rand) (p []float64, k, rot, center []float64) {
	// Calibration: upper triangular with positive diagonal, K22 = 1.
	k = []float64{
		800 + r.Float64()*200, r.Float64() * 2, 320 + r.Float64()*20,
		0, 800 + r.Float64()*200, 240 + r.Float64()*20,
		0, 0, 1,
	}
	// Rotation from a random quaternion.
	q := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	n := math.Sqrt(q[0]*q[0] + q[1]*q[1] + q[2]*q[2] + q[3]*q[3])
	for i := range q {
		q[i] /= n
	}
	w, x, y, z := q[0], q[1], q[2], q[3]
	rot = []float64{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
	center = []float64{r.Float64()*4 - 2, r.Float64()*4 - 2, r.Float64()*4 - 2}
	// t = -R·c.
	t := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			t[i] -= rot[i*3+j] * center[j]
		}
	}
	// P = K·[R | t].
	rt := []float64{
		rot[0], rot[1], rot[2], t[0],
		rot[3], rot[4], rot[5], t[1],
		rot[6], rot[7], rot[8], t[2],
	}
	p = make([]float64, 12)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for kk := 0; kk < 3; kk++ {
				p[i*4+j] += k[i*3+kk] * rt[kk*4+j]
			}
		}
	}
	return p, k, rot, center
}

func TestDecomposeRefRecovers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		p, k, rot, center := randProjection(r)
		gk, gr, gc := DecomposeRef(p)
		for i := range k {
			if math.Abs(gk[i]-k[i]) > 1e-6*math.Max(1, math.Abs(k[i])) {
				t.Fatalf("trial %d: K[%d] = %g, want %g", trial, i, gk[i], k[i])
			}
		}
		for i := range rot {
			if math.Abs(gr[i]-rot[i]) > 1e-6 {
				t.Fatalf("trial %d: R[%d] = %g, want %g", trial, i, gr[i], rot[i])
			}
		}
		for i := range center {
			if math.Abs(gc[i]-center[i]) > 1e-5 {
				t.Fatalf("trial %d: c[%d] = %g, want %g", trial, i, gc[i], center[i])
			}
		}
	}
}

func TestDecomposeOnSimulatorBothVariants(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p, k, rot, center := randProjection(r)
	for _, variant := range []Variant{VariantEigen, VariantDiospyros} {
		res, err := Decompose(p, variant)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		for i := range k {
			if math.Abs(res.K[i]-k[i]) > 1e-4*math.Max(1, math.Abs(k[i])) {
				t.Fatalf("%s: K[%d] = %g, want %g", variant, i, res.K[i], k[i])
			}
		}
		for i := range rot {
			if math.Abs(res.R[i]-rot[i]) > 1e-4 {
				t.Fatalf("%s: R[%d] = %g, want %g", variant, i, res.R[i], rot[i])
			}
		}
		for i := range center {
			if math.Abs(res.Center[i]-center[i]) > 1e-3 {
				t.Fatalf("%s: c[%d] = %g, want %g", variant, i, res.Center[i], center[i])
			}
		}
		if res.TotalCycles <= 0 || res.QRCycles <= 0 {
			t.Fatalf("%s: missing cycle counts: %+v", variant, res)
		}
	}
}

func TestDiospyrosVariantIsFaster(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p, _, _, _ := randProjection(r)
	eig, err := Decompose(p, VariantEigen)
	if err != nil {
		t.Fatal(err)
	}
	dio, err := Decompose(p, VariantDiospyros)
	if err != nil {
		t.Fatal(err)
	}
	if dio.QRCycles >= eig.QRCycles {
		t.Fatalf("Diospyros QR (%d cycles) not faster than library QR (%d)", dio.QRCycles, eig.QRCycles)
	}
	if dio.TotalCycles >= eig.TotalCycles {
		t.Fatalf("end-to-end: Diospyros %d >= Eigen %d cycles", dio.TotalCycles, eig.TotalCycles)
	}
	t.Logf("eigen total=%d (qr=%d, %.0f%%), diospyros total=%d (qr=%d); speedup %.2fx",
		eig.TotalCycles, eig.QRCycles, 100*float64(eig.QRCycles)/float64(eig.TotalCycles),
		dio.TotalCycles, dio.QRCycles,
		float64(eig.TotalCycles)/float64(dio.TotalCycles))
}

func TestDecomposeRejectsBadInput(t *testing.T) {
	if _, err := Decompose(make([]float64, 5), VariantEigen); err == nil {
		t.Fatal("bad input accepted")
	}
}

func TestProjectionConsistency(t *testing.T) {
	// P·(c,1) ≈ 0: the recovered center is the null vector.
	r := rand.New(rand.NewSource(4))
	p, _, _, _ := randProjection(r)
	_, _, c := DecomposeRef(p)
	for i := 0; i < 3; i++ {
		v := p[i*4+0]*c[0] + p[i*4+1]*c[1] + p[i*4+2]*c[2] + p[i*4+3]
		if math.Abs(v) > 1e-4 {
			t.Fatalf("P·(c,1)[%d] = %g", i, v)
		}
	}
	_ = kernels.MatMulRef // keep import for potential extension
}
