package isa

import (
	"strings"
	"testing"
)

func TestLayoutPacking(t *testing.T) {
	lay := NewLayout()
	if b := lay.Add("a", 8); b != 0 {
		t.Fatalf("first region base = %d", b)
	}
	if b := lay.Add("b", 4); b != 8 {
		t.Fatalf("second region base = %d", b)
	}
	if lay.Size() != 12 {
		t.Fatalf("Size = %d", lay.Size())
	}
	if lay.Base("b") != 8 || !lay.Has("a") || lay.Has("zzz") {
		t.Fatal("lookup broken")
	}
	regs := lay.Regions()
	if len(regs) != 2 || regs[0].Name != "a" || regs[1].Name != "b" {
		t.Fatalf("Regions = %+v", regs)
	}
	if r := lay.Region("b"); r.Base != 8 || r.Len != 4 {
		t.Fatalf("Region(b) = %+v", r)
	}
}

func TestLayoutPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	lay := NewLayout()
	lay.Add("a", 4)
	expectPanic("duplicate", func() { lay.Add("a", 4) })
	expectPanic("unknown base", func() { lay.Base("zzz") })
	expectPanic("unknown region", func() { lay.Region("zzz") })
}

func TestOpcodeSlots(t *testing.T) {
	memOps := []Opcode{SLoad, SStore, VLoad, VStore, VStoreN, ILoad}
	for _, op := range memOps {
		if op.Slot() != SlotMem {
			t.Errorf("%s should be a MEM-slot op", op)
		}
	}
	ctrlOps := []Opcode{Jmp, BrLT, BrGE, BrEQ, BrNE, BrLTF, BrGEF, Halt}
	for _, op := range ctrlOps {
		if op.Slot() != SlotCtrl {
			t.Errorf("%s should be a CTRL-slot op", op)
		}
		if op != Halt && !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
	}
	for _, op := range []Opcode{SAdd, VMac, VShfl, IConst} {
		if op.Slot() != SlotALU {
			t.Errorf("%s should be an ALU-slot op", op)
		}
	}
}

func TestLatencies(t *testing.T) {
	// Long-latency ops cost strictly more than simple ALU ops.
	for _, op := range []Opcode{SDiv, SSqrt, VDiv, VSqrt, IDiv, IMod} {
		if op.Latency() <= SAdd.Latency() {
			t.Errorf("%s latency %d not greater than add", op, op.Latency())
		}
	}
}

func TestIsVector(t *testing.T) {
	for _, op := range []Opcode{VConst, VMov, VBcast, VLoad, VStore, VStoreN,
		VInsert, VExtract, VShfl, VSel, VAdd, VMac, VCallFn} {
		if !op.IsVector() {
			t.Errorf("%s should be vector", op)
		}
	}
	for _, op := range []Opcode{SAdd, IConst, Jmp, Halt} {
		if op.IsVector() {
			t.Errorf("%s should not be vector", op)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: SConst, Dst: 3, Imm: 1.5}, "f3, 1.5"},
		{Instr{Op: SLoad, Dst: 1, A: 2, IImm: 7}, "f1, [i2+7]"},
		{Instr{Op: ILoad, Dst: 1, A: 2, IImm: 7}, "i1, [i2+7]"},
		{Instr{Op: VShfl, Dst: 1, A: 2, Idx: []int{3, 2, 1, 0}}, "v1, v2, [3 2 1 0]"},
		{Instr{Op: VSel, Dst: 1, A: 2, B: 3, Idx: []int{0, 5, 2, 7}}, "v1, v2, v3, [0 5 2 7]"},
		{Instr{Op: VMac, Dst: 1, A: 2, B: 3}, "v1 += v2*v3"},
		{Instr{Op: BrLT, A: 1, B: 2, Target: "loop"}, "i1, i2, loop"},
		{Instr{Op: VStoreN, A: 1, B: 2, IImm: 4, IImm2: 3}, "[i1+4], v2, n=3"},
	}
	for _, c := range cases {
		if got := c.in.String(); !strings.Contains(got, c.want) {
			t.Errorf("String(%v) = %q, want to contain %q", c.in.Op, got, c.want)
		}
	}
}

func TestBuilderDoubleBuild(t *testing.T) {
	b := NewBuilder("x", nil)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build should fail")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("x", nil)
	b.Label("l")
	b.Label("l")
}

func TestBuilderAppendsHalt(t *testing.T) {
	b := NewBuilder("x", nil)
	b.Emit(Instr{Op: IConst, Dst: 0, IImm: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[len(p.Instrs)-1].Op != Halt {
		t.Fatal("missing trailing Halt")
	}
}

func TestRegCounters(t *testing.T) {
	b := NewBuilder("x", nil)
	if b.FReg() != 0 || b.FReg() != 1 || b.IReg() != 0 || b.VReg() != 0 {
		t.Fatal("register counters wrong")
	}
	f, i, v := b.RegCounts()
	if f != 2 || i != 1 || v != 1 {
		t.Fatalf("RegCounts = %d %d %d", f, i, v)
	}
}

func TestOpHistogram(t *testing.T) {
	b := NewBuilder("x", nil)
	b.Emit(Instr{Op: SAdd})
	b.Emit(Instr{Op: SAdd})
	b.Emit(Instr{Op: VMac})
	p := b.MustBuild()
	h := p.OpHistogram()
	if h[SAdd] != 2 || h[VMac] != 1 || h[Halt] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}
