// Package isa defines FG3-lite, a simulated DSP instruction set standing in
// for the Tensilica Fusion G3 the paper targets (§5.1–5.2). FG3-lite is an
// in-order VLIW-style core with:
//
//   - scalar float registers (f), integer/address registers (i), and
//     W-wide vector registers (v), with W = 4 by default like the G3's
//     4-wide single-precision SIMD unit;
//   - unit-delay memory of float elements (matching xt-run's default ideal
//     memory model);
//   - flexible data movement: single-register shuffle (VShfl, the analogue
//     of PDX_SHFL_MX32) and two-register select (VSel, PDX_SEL_MX32) with
//     arbitrary immediate index vectors;
//   - fused multiply–accumulate (VMac, PDX_MAC_MFX32);
//   - dual issue: one memory-slot and one ALU-slot operation per cycle when
//     independent.
//
// Programs are sequences of Instr with symbolic labels; the simulator in
// package sim executes them and reports deterministic cycle counts.
package isa

import (
	"fmt"
	"strings"
)

// Width is the default vector width (lanes per vector register), matching
// the paper's 4-wide Fusion G3. It is only a default: programs carry a
// runtime Target descriptor whose Width may differ (Program.VecWidth), and
// only the fixed-width hand-written baselines (kcc's default layout, the
// nature vendor library) still assume it.
const Width = 4

// Opcode enumerates FG3-lite instructions.
type Opcode uint8

const (
	Invalid Opcode = iota

	// Scalar float: f registers.
	SConst // f[Dst] = Imm
	SMov   // f[Dst] = f[A]
	SLoad  // f[Dst] = mem[i[A] + IImm]
	SStore // mem[i[A] + IImm] = f[B]
	SAdd   // f[Dst] = f[A] + f[B]
	SSub
	SMul
	SDiv
	SNeg  // f[Dst] = -f[A]
	SSqrt // f[Dst] = sqrt(f[A])
	SSgn  // f[Dst] = sgn(f[A])  (−1 if negative else +1)
	SAbs  // f[Dst] = |f[A]|

	// Integer/address: i registers.
	IConst // i[Dst] = IImm
	ILoad  // i[Dst] = int(mem[i[A] + IImm]) — integer/size parameter load
	IMov   // i[Dst] = i[A]
	IAdd   // i[Dst] = i[A] + i[B]
	ISub
	IMul
	IDiv
	IMod
	IAddI // i[Dst] = i[A] + IImm
	IMulI // i[Dst] = i[A] * IImm

	// Control flow. Branches compare registers and jump to Target.
	Jmp    // unconditional
	BrLT   // if i[A] <  i[B]
	BrGE   // if i[A] >= i[B]
	BrEQ   // if i[A] == i[B]
	BrNE   // if i[A] != i[B]
	BrLTF  // if f[A] <  f[B]
	BrGEF  // if f[A] >= f[B]
	Halt   // stop execution
	CallFn // uninterpreted scalar function: f[Dst] = fn[Sym](f args via FArgs)

	// Vector: v registers.
	VConst   // v[Dst] = Vals (Width floats)
	VMov     // v[Dst] = v[A]
	VBcast   // v[Dst] = splat f[A]
	VLoad    // v[Dst] = mem[i[A]+IImm : +Width] (aligned or not: unit cost)
	VStore   // mem[i[A]+IImm : +Width] = v[B]
	VStoreN  // first IImm2 lanes of v[B] stored at mem[i[A]+IImm]
	VInsert  // v[Dst][IImm] = f[A]
	VExtract // f[Dst] = v[A][IImm]
	VShfl    // v[Dst][k] = v[A][Idx[k]]              (PDX_SHFL-like)
	VSel     // v[Dst][k] = concat(v[A], v[B])[Idx[k]] (PDX_SEL-like)
	VAdd     // v[Dst] = v[A] + v[B] elementwise
	VSub
	VMul
	VDiv
	VMac // v[Dst] = v[Dst] + v[A]*v[B] (accumulating)
	VNeg
	VSqrt
	VSgn
	VCallFn // uninterpreted vector function, elementwise over v args

	NumOpcodes
)

// Instr is one FG3-lite instruction. Register fields index the f/i/v files
// depending on the opcode.
type Instr struct {
	Op     Opcode
	Dst    int
	A, B   int
	Imm    float64   // scalar immediate
	IImm   int       // integer immediate / memory offset / lane index
	IImm2  int       // second integer immediate (VStoreN lane count)
	Vals   []float64 // VConst payload
	Idx    []int     // VShfl/VSel index vector
	Target string    // branch target label
	Sym    string    // CallFn/VCallFn function name
	Args   []int     // CallFn/VCallFn argument registers
}

// Slot is the VLIW issue slot an instruction occupies.
type Slot uint8

const (
	SlotALU Slot = iota
	SlotMem
	SlotCtrl
)

// Kind groups opcodes for cost accounting and verification.
func (op Opcode) Slot() Slot {
	switch op {
	case SLoad, SStore, VLoad, VStore, VStoreN, ILoad:
		return SlotMem
	case Jmp, BrLT, BrGE, BrEQ, BrNE, BrLTF, BrGEF, Halt:
		return SlotCtrl
	default:
		return SlotALU
	}
}

// Latency returns the issue-to-result latency in cycles. FG3-lite issues
// one instruction (or one dual-issue pair) per cycle; long-latency ops
// stall dependents.
func (op Opcode) Latency() int {
	switch op {
	case SDiv, IDiv, IMod:
		return 8
	case SSqrt:
		return 12
	case VDiv:
		return 10
	case VSqrt:
		return 14
	case CallFn, VCallFn:
		return 4
	default:
		return 1
	}
}

// IsBranch reports whether the opcode may transfer control.
func (op Opcode) IsBranch() bool {
	switch op {
	case Jmp, BrLT, BrGE, BrEQ, BrNE, BrLTF, BrGEF:
		return true
	}
	return false
}

// IsVector reports whether the opcode touches vector registers.
func (op Opcode) IsVector() bool {
	switch op {
	case VConst, VMov, VBcast, VLoad, VStore, VStoreN, VInsert, VExtract,
		VShfl, VSel, VAdd, VSub, VMul, VDiv, VMac, VNeg, VSqrt, VSgn, VCallFn:
		return true
	}
	return false
}

var opNames = map[Opcode]string{
	SConst: "sconst", SMov: "smov", SLoad: "sload", SStore: "sstore",
	SAdd: "sadd", SSub: "ssub", SMul: "smul", SDiv: "sdiv",
	SNeg: "sneg", SSqrt: "ssqrt", SSgn: "ssgn", SAbs: "sabs",
	IConst: "iconst", ILoad: "iload", IMov: "imov", IAdd: "iadd", ISub: "isub",
	IMul: "imul", IDiv: "idiv", IMod: "imod", IAddI: "iaddi", IMulI: "imuli",
	Jmp: "jmp", BrLT: "brlt", BrGE: "brge", BrEQ: "breq", BrNE: "brne",
	BrLTF: "brltf", BrGEF: "brgef", Halt: "halt", CallFn: "call",
	VConst: "vconst", VMov: "vmov", VBcast: "vbcast", VLoad: "vload",
	VStore: "vstore", VStoreN: "vstoren", VInsert: "vinsert",
	VExtract: "vextract", VShfl: "vshfl", VSel: "vsel",
	VAdd: "vadd", VSub: "vsub", VMul: "vmul", VDiv: "vdiv", VMac: "vmac",
	VNeg: "vneg", VSqrt: "vsqrt", VSgn: "vsgn", VCallFn: "vcall",
}

// String returns the opcode mnemonic.
func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// String renders the instruction in a readable assembly-like syntax.
func (in Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", in.Op)
	switch in.Op {
	case SConst:
		fmt.Fprintf(&b, "f%d, %g", in.Dst, in.Imm)
	case SMov, SNeg, SSqrt, SSgn, SAbs:
		fmt.Fprintf(&b, "f%d, f%d", in.Dst, in.A)
	case SLoad:
		fmt.Fprintf(&b, "f%d, [i%d+%d]", in.Dst, in.A, in.IImm)
	case ILoad:
		fmt.Fprintf(&b, "i%d, [i%d+%d]", in.Dst, in.A, in.IImm)
	case SStore:
		fmt.Fprintf(&b, "[i%d+%d], f%d", in.A, in.IImm, in.B)
	case SAdd, SSub, SMul, SDiv:
		fmt.Fprintf(&b, "f%d, f%d, f%d", in.Dst, in.A, in.B)
	case IConst:
		fmt.Fprintf(&b, "i%d, %d", in.Dst, in.IImm)
	case IMov:
		fmt.Fprintf(&b, "i%d, i%d", in.Dst, in.A)
	case IAdd, ISub, IMul, IDiv, IMod:
		fmt.Fprintf(&b, "i%d, i%d, i%d", in.Dst, in.A, in.B)
	case IAddI, IMulI:
		fmt.Fprintf(&b, "i%d, i%d, %d", in.Dst, in.A, in.IImm)
	case Jmp:
		fmt.Fprintf(&b, "%s", in.Target)
	case BrLT, BrGE, BrEQ, BrNE:
		fmt.Fprintf(&b, "i%d, i%d, %s", in.A, in.B, in.Target)
	case BrLTF, BrGEF:
		fmt.Fprintf(&b, "f%d, f%d, %s", in.A, in.B, in.Target)
	case Halt:
	case CallFn:
		fmt.Fprintf(&b, "f%d, %s(%v)", in.Dst, in.Sym, in.Args)
	case VConst:
		fmt.Fprintf(&b, "v%d, %v", in.Dst, in.Vals)
	case VMov, VNeg, VSqrt, VSgn:
		fmt.Fprintf(&b, "v%d, v%d", in.Dst, in.A)
	case VBcast:
		fmt.Fprintf(&b, "v%d, f%d", in.Dst, in.A)
	case VLoad:
		fmt.Fprintf(&b, "v%d, [i%d+%d]", in.Dst, in.A, in.IImm)
	case VStore:
		fmt.Fprintf(&b, "[i%d+%d], v%d", in.A, in.IImm, in.B)
	case VStoreN:
		fmt.Fprintf(&b, "[i%d+%d], v%d, n=%d", in.A, in.IImm, in.B, in.IImm2)
	case VInsert:
		fmt.Fprintf(&b, "v%d[%d], f%d", in.Dst, in.IImm, in.A)
	case VExtract:
		fmt.Fprintf(&b, "f%d, v%d[%d]", in.Dst, in.A, in.IImm)
	case VShfl:
		fmt.Fprintf(&b, "v%d, v%d, %v", in.Dst, in.A, in.Idx)
	case VSel:
		fmt.Fprintf(&b, "v%d, v%d, v%d, %v", in.Dst, in.A, in.B, in.Idx)
	case VAdd, VSub, VMul, VDiv:
		fmt.Fprintf(&b, "v%d, v%d, v%d", in.Dst, in.A, in.B)
	case VMac:
		fmt.Fprintf(&b, "v%d += v%d*v%d", in.Dst, in.A, in.B)
	case VCallFn:
		fmt.Fprintf(&b, "v%d, %s(%v)", in.Dst, in.Sym, in.Args)
	}
	return strings.TrimRight(b.String(), " ")
}
