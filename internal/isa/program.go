package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Program is an FG3-lite program: an instruction list with symbolic labels
// and a memory layout mapping array names to base addresses.
type Program struct {
	Name   string
	Instrs []Instr
	Labels map[string]int // label -> instruction index
	Layout *Layout
	// Target is the machine the program was compiled for; the simulator
	// takes the vector-register width and opcode latencies from it. Nil
	// means the default fg3lite-4 machine (hand-written library kernels).
	Target *Target
}

// VecWidth returns the vector-register width the program executes with.
func (p *Program) VecWidth() int {
	if p.Target != nil {
		return p.Target.Width
	}
	return Width
}

// Layout assigns flat memory regions to named arrays.
type Layout struct {
	regions []Region
	byName  map[string]int
}

// Region is one named array in simulated memory.
type Region struct {
	Name string
	Base int
	Len  int
}

// NewLayout builds a layout by packing the given (name, len) pairs
// consecutively from address 0.
func NewLayout() *Layout {
	return &Layout{byName: map[string]int{}}
}

// Add appends an array region, returning its base address.
func (l *Layout) Add(name string, n int) int {
	if _, dup := l.byName[name]; dup {
		panic("isa: duplicate region " + name)
	}
	base := l.Size()
	l.byName[name] = len(l.regions)
	l.regions = append(l.regions, Region{Name: name, Base: base, Len: n})
	return base
}

// Base returns the base address of a named region.
func (l *Layout) Base(name string) int {
	i, ok := l.byName[name]
	if !ok {
		panic("isa: unknown region " + name)
	}
	return l.regions[i].Base
}

// Has reports whether the region exists.
func (l *Layout) Has(name string) bool {
	_, ok := l.byName[name]
	return ok
}

// Region returns the named region.
func (l *Layout) Region(name string) Region {
	i, ok := l.byName[name]
	if !ok {
		panic("isa: unknown region " + name)
	}
	return l.regions[i]
}

// Regions returns all regions in address order.
func (l *Layout) Regions() []Region {
	out := append([]Region(nil), l.regions...)
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Size is the total number of elements in the layout.
func (l *Layout) Size() int {
	n := 0
	for _, r := range l.regions {
		n += r.Len
	}
	return n
}

// Builder assembles a Program, managing label resolution and virtual
// register allocation.
type Builder struct {
	prog      Program
	nextF     int
	nextI     int
	nextV     int
	labelSeq  int
	finalized bool
}

// NewBuilder starts a program with the given name and layout. The builder
// takes ownership of the layout; library code may extend it (e.g. local
// scratch regions) via Layout before Build.
func NewBuilder(name string, layout *Layout) *Builder {
	if layout == nil {
		layout = NewLayout()
	}
	return &Builder{prog: Program{
		Name:   name,
		Labels: map[string]int{},
		Layout: layout,
	}}
}

// Layout returns the program's memory layout for extension and queries.
func (b *Builder) Layout() *Layout { return b.prog.Layout }

// SetTarget stamps the machine descriptor onto the program being built.
// Unset means the default fg3lite-4 machine.
func (b *Builder) SetTarget(t *Target) { b.prog.Target = t }

// VecWidth returns the vector width of the program being built.
func (b *Builder) VecWidth() int { return b.prog.VecWidth() }

// Emit appends an instruction.
func (b *Builder) Emit(in Instr) {
	b.prog.Instrs = append(b.prog.Instrs, in)
}

// Label binds a label to the next instruction index.
func (b *Builder) Label(name string) {
	if _, dup := b.prog.Labels[name]; dup {
		panic("isa: duplicate label " + name)
	}
	b.prog.Labels[name] = len(b.prog.Instrs)
}

// FreshLabel returns a unique label name with the given prefix.
func (b *Builder) FreshLabel(prefix string) string {
	b.labelSeq++
	return fmt.Sprintf(".%s%d", prefix, b.labelSeq)
}

// FReg, IReg and VReg allocate fresh register names. The simulator sizes
// its files to the program (sim.Config); the compilers in this repository
// keep the names they use realistic — the Diospyros code generator recycles
// dead registers and bounds pressure by rematerialization (vir.BoundPressure),
// and the fixed-size baseline models allocation with a bounded promotion
// cache (kcc).
func (b *Builder) FReg() int { b.nextF++; return b.nextF - 1 }
func (b *Builder) IReg() int { b.nextI++; return b.nextI - 1 }
func (b *Builder) VReg() int { b.nextV++; return b.nextV - 1 }

// RegCounts returns the number of virtual registers allocated so far.
func (b *Builder) RegCounts() (f, i, v int) { return b.nextF, b.nextI, b.nextV }

// Build finalizes the program: verifies branch targets and appends a Halt
// if the program does not already end with one.
func (b *Builder) Build() (*Program, error) {
	if b.finalized {
		return nil, fmt.Errorf("isa: Build called twice")
	}
	b.finalized = true
	n := len(b.prog.Instrs)
	if n == 0 || b.prog.Instrs[n-1].Op != Halt {
		b.prog.Instrs = append(b.prog.Instrs, Instr{Op: Halt})
	}
	for pc, in := range b.prog.Instrs {
		if in.Op.IsBranch() {
			if _, ok := b.prog.Labels[in.Target]; !ok {
				return nil, fmt.Errorf("isa: %s at %d: undefined label %q", in.Op, pc, in.Target)
			}
		}
	}
	return &b.prog, nil
}

// MustBuild is Build, panicking on error (for hand-written library kernels).
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the whole program with labels interleaved.
func (p *Program) Disassemble() string {
	labelsAt := map[int][]string{}
	for name, idx := range p.Labels {
		labelsAt[idx] = append(labelsAt[idx], name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s (%d instrs)\n", p.Name, len(p.Instrs))
	for _, r := range p.Layout.Regions() {
		fmt.Fprintf(&b, "; region %-8s base=%-5d len=%d\n", r.Name, r.Base, r.Len)
	}
	for pc, in := range p.Instrs {
		names := labelsAt[pc]
		sort.Strings(names)
		for _, l := range names {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %3d  %s\n", pc, in)
	}
	return b.String()
}

// OpHistogram counts instructions by opcode (static, not dynamic).
func (p *Program) OpHistogram() map[Opcode]int {
	h := map[Opcode]int{}
	for _, in := range p.Instrs {
		h[in.Op]++
	}
	return h
}
