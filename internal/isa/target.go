package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Target is a runtime machine descriptor: the vector width, per-opcode
// latency overrides, and the data-movement capabilities that parameterize
// the cost model. The compiler threads a *Target through every layer —
// rules (chunk width), cost (width gating and movement weights), lowering
// and codegen (lane counts), and the simulator (register width and
// latencies) — so one binary compiles for several machines, and one
// saturated e-graph can be extracted once per target.
//
// Targets are immutable after registration; the same pointer is shared by
// concurrent compiles.
type Target struct {
	// Name identifies the target in the registry ("fg3lite-4", "scalar").
	Name string
	// Width is the number of lanes per vector register. 1 means a scalar
	// machine with no vector unit.
	Width int
	// Latencies overrides Opcode.Latency per opcode; opcodes not present
	// use the FG3-lite defaults.
	Latencies map[Opcode]int
	// ShuffleCaps describes the data-movement instructions available.
	ShuffleCaps ShuffleCaps
	// HasAssembly reports whether codegen can emit simulator-runnable
	// assembly for this target. All built-in targets have a backend;
	// custom registered targets may be IR/C-only.
	HasAssembly bool
}

// ShuffleCaps describes a target's register data-movement capabilities,
// which drive the cost model's shuffle-vs-gather penalties.
type ShuffleCaps struct {
	// SingleRegister: a one-source arbitrary-lane shuffle (VShfl,
	// PDX_SHFL-like) exists.
	SingleRegister bool
	// TwoRegister: a two-source select (VSel, PDX_SEL-like) exists.
	TwoRegister bool
}

// LatencyOf returns the issue-to-result latency of op on this target,
// falling back to the FG3-lite defaults. Safe on a nil receiver (the
// default target's latencies).
func (t *Target) LatencyOf(op Opcode) int {
	if t != nil && t.Latencies != nil {
		if l, ok := t.Latencies[op]; ok {
			return l
		}
	}
	return op.Latency()
}

// IsScalar reports whether the target has no vector unit.
func (t *Target) IsScalar() bool { return t == nil || t.Width <= 1 }

// String returns the registry name.
func (t *Target) String() string {
	if t == nil {
		return "fg3lite-4"
	}
	return t.Name
}

// NewFG3Lite builds an FG3-lite-style target of the given vector width
// (full single-register shuffle and two-register select, default
// latencies). Width must be at least 2; width-1 machines are the "scalar"
// target.
func NewFG3Lite(width int) *Target {
	return &Target{
		Name:        fmt.Sprintf("fg3lite-%d", width),
		Width:       width,
		ShuffleCaps: ShuffleCaps{SingleRegister: true, TwoRegister: true},
		HasAssembly: true,
	}
}

// registry maps target names to descriptors. Built-ins are installed at
// init; RegisterTarget adds custom machines.
var (
	registryMu sync.RWMutex
	registry   = map[string]*Target{}
)

func init() {
	// fg3lite-4: the paper's Fusion G3 stand-in, 4-wide. Default latencies.
	MustRegisterTarget(NewFG3Lite(4))
	// fg3lite-8: a hypothetical double-width variant. The wider permute
	// network costs extra cycles for cross-lane movement and the long-op
	// pipelines stretch, which the cost model and simulator both see.
	fg8 := NewFG3Lite(8)
	fg8.Latencies = map[Opcode]int{VShfl: 2, VSel: 3, VDiv: 12, VSqrt: 18}
	MustRegisterTarget(fg8)
	// scalar: no vector unit at all; extraction is forced through the
	// scalar-only cost model and codegen emits pure s-ops.
	MustRegisterTarget(&Target{Name: "scalar", Width: 1, HasAssembly: true})
}

// Default returns the default target, fg3lite-4 — the paper's machine.
func Default() *Target {
	t, _ := LookupTarget("fg3lite-4")
	return t
}

// LookupTarget resolves a target name. Registered names win; otherwise
// "fg3lite-<w>" for any width ≥ 2 resolves to a generic FG3-lite machine
// of that width with default latencies.
func LookupTarget(name string) (*Target, error) {
	registryMu.RLock()
	t, ok := registry[name]
	registryMu.RUnlock()
	if ok {
		return t, nil
	}
	if w, ok := strings.CutPrefix(name, "fg3lite-"); ok {
		n, err := strconv.Atoi(w)
		if err == nil && n >= 2 {
			return NewFG3Lite(n), nil
		}
		if err == nil && n == 1 {
			return nil, fmt.Errorf("isa: width-1 target is %q, not %q", "scalar", name)
		}
	}
	return nil, fmt.Errorf("isa: unknown target %q (have %s)", name, strings.Join(TargetNames(), ", "))
}

// RegisterTarget installs a custom target in the registry. The name must
// be unique and the width positive.
func RegisterTarget(t *Target) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("isa: target must have a name")
	}
	if t.Width < 1 {
		return fmt.Errorf("isa: target %q has non-positive width %d", t.Name, t.Width)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[t.Name]; dup {
		return fmt.Errorf("isa: target %q already registered", t.Name)
	}
	registry[t.Name] = t
	return nil
}

// MustRegisterTarget is RegisterTarget, panicking on error (init-time use).
func MustRegisterTarget(t *Target) {
	if err := RegisterTarget(t); err != nil {
		panic(err)
	}
}

// TargetNames returns the registered target names, sorted.
func TargetNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
