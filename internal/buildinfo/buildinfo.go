// Package buildinfo identifies the running build: a version string, the Go
// toolchain that compiled it, and the VCS revision when the binary was
// built from a checkout. Every CLI exposes it behind a -version flag and
// diosserve publishes it as the diospyros_build_info gauge, so a soak
// result or a metrics scrape can always be tied back to the exact build
// that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"

	"diospyros/internal/isa"
)

// Version names the release. Overridable at link time:
//
//	go build -ldflags "-X diospyros/internal/buildinfo.Version=v1.2.3"
var Version = "0.8.0-dev"

// Revision returns the VCS revision baked into the binary by the Go
// toolchain ("unknown" outside a VCS build), with a "-dirty" suffix for
// modified checkouts.
func Revision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// Summary renders the one-line -version output for the named CLI:
//
//	diosload 0.8.0-dev (rev abc123def456, go1.22.1, targets fg3lite-4,fg3lite-8,scalar)
func Summary(cli string) string {
	return fmt.Sprintf("%s %s (rev %s, %s, targets %s)",
		cli, Version, Revision(), runtime.Version(),
		strings.Join(isa.TargetNames(), ","))
}

// MetricLabels returns the label set of the diospyros_build_info gauge.
func MetricLabels() map[string]string {
	return map[string]string{
		"version":   Version,
		"revision":  Revision(),
		"goversion": runtime.Version(),
		"targets":   strings.Join(isa.TargetNames(), ","),
	}
}
