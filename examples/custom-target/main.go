// Custom target: the paper's §6 portability recipe, end to end. Suppose a
// DSP variant adds a fast vectorized reciprocal. To teach Diospyros the
// instruction, a designer needs (per the paper) to:
//
//  1. add a scalar rewrite rule like (/ ?x ?y) ⇝ (* ?x (recip ?y)),
//     "relying on existing support for division";
//  2. inform the engine that recip has a vector equivalent — automatic
//     here, because uninterpreted functions vectorize lane-wise;
//  3. map the intrinsic in the backend — automatic too (the C emitter
//     prints `recip_v(...)`, the simulator takes its semantics at run
//     time, standing in for the vendor toolchain).
//
// The kernel below is written with ordinary division; with the rule and a
// cost hint, the compiler discovers the reciprocal form by itself.
//
//	go run ./examples/custom-target
package main

import (
	"fmt"
	"log"
	"strings"

	diospyros "diospyros"
)

const src = `
kernel normalize8(x[8], d[8]) -> (out[8]) {
    for i in 0..8 {
        out[i] = x[i] / d[i];
    }
}
`

func main() {
	// Stock target: the kernel compiles to vector divides.
	stock, err := diospyros.CompileSource(src, diospyros.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Custom target: one rewrite rule plus cost hints for the new
	// instruction (cheap recip, to reflect the hardware).
	custom, err := diospyros.CompileSource(src, diospyros.Options{
		ExtraRules: []diospyros.RewriteRule{
			{Name: "div-to-recip", LHS: "(/ ?x ?y)", RHS: "(* ?x (func recip ?y))"},
		},
		OpCost: map[string]float64{
			"func:recip":    0.8, // fast scalar reciprocal
			"VecFunc:recip": 0.8, // fast vector reciprocal
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== stock target: vector divides ===")
	printArith(stock.C)
	fmt.Println("\n=== custom target: the search rewrote division into recip ===")
	printArith(custom.C)

	// Run both on the simulator; the custom target supplies recip's
	// semantics (the vendor toolchain's role).
	inputs := map[string][]float64{
		"x": {2, 4, 6, 8, 10, 12, 14, 16},
		"d": {2, 2, 3, 4, 5, 6, 7, 8},
	}
	_, ssim, err := stock.Run(inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	recip := map[string]func([]float64) float64{
		"recip": func(args []float64) float64 { return 1 / args[0] },
	}
	out, csim, err := custom.Run(inputs, recip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nout = %v\n", out["out"])
	fmt.Printf("stock target:  %d cycles (vector divide latency)\n", ssim.Cycles)
	fmt.Printf("custom target: %d cycles with the fast reciprocal\n", csim.Cycles)
}

// printArith shows just the arithmetic lines of the generated code.
func printArith(c string) {
	for _, line := range strings.Split(c, "\n") {
		if strings.Contains(line, "PDX_DIV") || strings.Contains(line, "recip_v") ||
			strings.Contains(line, "PDX_MUL") {
			fmt.Println(strings.TrimSpace(line))
		}
	}
}
