// Convolution: the paper's §2 motivating example end to end — a fixed-size
// 2-D convolution (3×5 input, 3×3 filter) compiled five ways and raced on
// the simulated DSP:
//
//   - a naive loop nest with parametric sizes,
//
//   - the same loop nest with fixed sizes (full -O3-style unrolling),
//
//   - the vendor's size-generic vectorized library routine,
//
//   - a portable scalar library (Eigen-like),
//
//   - Diospyros.
//
//     go run ./examples/convolution
package main

import (
	"fmt"
	"log"
	"math/rand"

	diospyros "diospyros"
	"diospyros/internal/eigenlite"
	"diospyros/internal/frontend"
	"diospyros/internal/kcc"
	"diospyros/internal/kernels"
	"diospyros/internal/nature"
	"diospyros/internal/sim"
)

const convSrc = `
kernel conv2d(i[3][5], f[3][3]) -> (o[5][7]) {
    for oRow in 0..5 {
        for oCol in 0..7 {
            for fRow in 0..3 {
                for fCol in 0..3 {
                    let fRT = 3 - 1 - fRow;
                    let fCT = 3 - 1 - fCol;
                    let iRow = oRow - fRT;
                    let iCol = oCol - fCT;
                    if iRow >= 0 && iRow < 3 && iCol >= 0 && iCol < 5 {
                        o[oRow][oCol] = o[oRow][oCol] + i[iRow][iCol] * f[fRT][fCT];
                    }
                }
            }
        }
    }
}
`

func main() {
	r := rand.New(rand.NewSource(42))
	in := make([]float64, 15)
	filt := make([]float64, 9)
	for i := range in {
		in[i] = r.Float64()*4 - 2
	}
	for i := range filt {
		filt[i] = r.Float64()*4 - 2
	}
	want := kernels.Conv2DRef(3, 5, 3, 3, in, filt)

	type entry struct {
		name   string
		cycles int64
	}
	var results []entry
	check := func(name string, got []float64) {
		for i := range want {
			if diff := got[i] - want[i]; diff > 1e-6 || diff < -1e-6 {
				log.Fatalf("%s: wrong output at %d: %g vs %g", name, i, got[i], want[i])
			}
		}
	}

	// Baselines via the baseline compiler.
	ast := frontend.MustParse(convSrc)
	for _, mode := range []kcc.Mode{kcc.Parametric, kcc.FixedSize} {
		p, err := kcc.Compile(ast, mode)
		if err != nil {
			log.Fatal(err)
		}
		mem := make([]float64, p.Layout.Size())
		copy(mem[p.Layout.Base("i"):], in)
		copy(mem[p.Layout.Base("f"):], filt)
		res, err := sim.Run(p, mem, sim.Defaults())
		if err != nil {
			log.Fatal(err)
		}
		ob := p.Layout.Base("o")
		check("naive "+mode.String(), res.Mem[ob:ob+35])
		results = append(results, entry{"naive (" + mode.String() + ")", res.Cycles})
	}

	// Vendor library.
	prog := nature.Conv2D(3, 5, 3, 3)
	nout, nres, err := nature.Run(prog, map[string][]float64{"i": in, "f": filt}, []int{3, 5, 3, 3})
	if err != nil {
		log.Fatal(err)
	}
	check("vendor library", nout["o"][:35])
	results = append(results, entry{"vendor library (Nature-like)", nres.Cycles})

	// Portable scalar library.
	ert, err := eigenlite.Build(eigenlite.Conv2DSrc(3, 5, 3, 3), kcc.Parametric)
	if err != nil {
		log.Fatal(err)
	}
	eout, eres, err := ert.Run(map[string][]float64{"i": in, "f": filt})
	if err != nil {
		log.Fatal(err)
	}
	check("eigen-like", eout["o"])
	results = append(results, entry{"portable library (Eigen-like)", eres.Cycles})

	// Diospyros.
	dres, err := diospyros.CompileSource(convSrc, diospyros.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dout, dsim, err := dres.Run(map[string][]float64{"i": in, "f": filt}, nil)
	if err != nil {
		log.Fatal(err)
	}
	check("diospyros", dout["o"])
	results = append(results, entry{"diospyros", dsim.Cycles})

	fmt.Println("2-D convolution, 3×5 input ⋆ 3×3 filter (paper §2), simulated cycles:")
	base := results[1].cycles // fixed-size naive, the paper's normalization
	for _, e := range results {
		fmt.Printf("  %-32s %6d cycles   %5.2fx vs fixed-size naive\n",
			e.name, e.cycles, float64(base)/float64(e.cycles))
	}
	fmt.Println("\nall five implementations agree on the outputs; the compiled")
	fmt.Println("Diospyros kernel used", dsim.VectorOps(), "vector operations")
}
