// Quickstart: compile a small kernel from source, look at the generated
// vector code, and run it on the bundled cycle-level DSP simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	diospyros "diospyros"
)

// A scalar reference implementation of a fused "scale and accumulate"
// kernel: out = x*alpha + y, written in Diospyros's imperative kernel
// language. Sizes are fixed — that is the class of kernels Diospyros
// targets (paper §1: small kernels near the machine's vector width).
const src = `
kernel saxpy8(x[8], y[8], alpha[1]) -> (out[8]) {
    for i in 0..8 {
        out[i] = x[i] * alpha[0] + y[i];
    }
}
`

func main() {
	// Compile: symbolic evaluation lifts the loops into a mathematical
	// specification, equality saturation searches for a vectorization, and
	// the backend emits vector intrinsics.
	res, err := diospyros.CompileSource(src, diospyros.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== generated C with vector intrinsics ===")
	fmt.Println(res.C)

	fmt.Println("=== compilation statistics ===")
	fmt.Printf("saturation: %d e-nodes, %d iterations, stopped: %s\n",
		res.Saturation.Nodes, res.Saturation.Iterations, res.Saturation.Reason)
	fmt.Printf("extracted cost: %.1f\n\n", res.Cost)

	// Run the compiled kernel on the FG3-lite simulator.
	inputs := map[string][]float64{
		"x":     {1, 2, 3, 4, 5, 6, 7, 8},
		"y":     {10, 20, 30, 40, 50, 60, 70, 80},
		"alpha": {0.5},
	}
	out, sim, err := res.Run(inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== simulation ===")
	fmt.Printf("out = %v\n", out["out"])
	fmt.Printf("%d cycles, %d instructions on the simulated 4-wide DSP\n", sim.Cycles, sim.Instrs)
}
