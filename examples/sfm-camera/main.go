// SFM camera model: the paper's §5.7 application case study. A structure-
// from-motion camera initialization (Theia's DecomposeProjectionMatrix)
// runs end to end on the simulated DSP; its hot small kernel — a 3×3 QR
// decomposition — is then swapped from the portable scalar library to a
// Diospyros-compiled kernel, and the end-to-end effect is measured.
//
//	go run ./examples/sfm-camera
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"diospyros/internal/theia"
)

func main() {
	// A synthetic but realistic projection matrix P = K·[R | −R·c].
	r := rand.New(rand.NewSource(3))
	p, k, _, center := projection(r)

	fmt.Println("decomposing the 3×4 projection matrix on the simulated DSP…")
	eig, err := theia.Decompose(p, theia.VariantEigen)
	if err != nil {
		log.Fatal(err)
	}
	dio, err := theia.Decompose(p, theia.VariantDiospyros)
	if err != nil {
		log.Fatal(err)
	}

	// Both variants recover the ground truth.
	for i := range k {
		if math.Abs(eig.K[i]-k[i]) > 1e-3*(1+math.Abs(k[i])) ||
			math.Abs(dio.K[i]-k[i]) > 1e-3*(1+math.Abs(k[i])) {
			log.Fatalf("calibration mismatch at %d", i)
		}
	}
	fmt.Printf("recovered camera center: (%.3f, %.3f, %.3f); truth (%.3f, %.3f, %.3f)\n\n",
		dio.Center[0], dio.Center[1], dio.Center[2], center[0], center[1], center[2])

	fmt.Println("cycle breakdown with the portable library QR:")
	printSteps(eig.StepCycles, eig.TotalCycles)
	fmt.Println("\ncycle breakdown with the Diospyros-compiled QR:")
	printSteps(dio.StepCycles, dio.TotalCycles)

	fmt.Printf("\nthe 3×3 QR kernel is %.0f%% of the library version's run time;\n",
		100*float64(eig.QRCycles)/float64(eig.TotalCycles))
	fmt.Printf("swapping that one kernel gives a %.2fx end-to-end speedup\n",
		float64(eig.TotalCycles)/float64(dio.TotalCycles))
	fmt.Println("(paper §5.7: 61% in QR; 2.1x end to end)")
}

func printSteps(steps map[string]int64, total int64) {
	var names []string
	for n := range steps {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return steps[names[i]] > steps[names[j]] })
	for _, n := range names {
		c := steps[n]
		fmt.Printf("  %-18s %6d cycles  %4.0f%%\n", n, c, 100*float64(c)/float64(total))
	}
	fmt.Printf("  %-18s %6d cycles\n", "total", total)
}

// projection builds P = K·[R | −R·c] with known ground truth.
func projection(r *rand.Rand) (p, k, rot, center []float64) {
	k = []float64{
		900, 0.4, 320,
		0, 870, 240,
		0, 0, 1,
	}
	q := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	n := math.Sqrt(q[0]*q[0] + q[1]*q[1] + q[2]*q[2] + q[3]*q[3])
	for i := range q {
		q[i] /= n
	}
	w, x, y, z := q[0], q[1], q[2], q[3]
	rot = []float64{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
	center = []float64{1.25, -0.5, 2.0}
	t := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			t[i] -= rot[i*3+j] * center[j]
		}
	}
	p = make([]float64, 12)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for kk := 0; kk < 3; kk++ {
				col := t[kk]
				if j < 3 {
					col = rot[kk*3+j]
				}
				p[i*4+j] += k[i*3+kk] * col
			}
		}
	}
	return p, k, rot, center
}
