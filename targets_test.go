package diospyros

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"diospyros/internal/expr"
	"diospyros/internal/isa"
	"diospyros/internal/kernels"
)

// TestMultiTargetCompile runs one saturation search and extracts once per
// target, checking each target's program is runnable and agrees with the
// specification.
func TestMultiTargetCompile(t *testing.T) {
	l := kernels.MatMul(2, 2, 2)
	opts := testOpts()
	opts.Targets = []string{"fg3lite-4", "fg3lite-8", "scalar"}
	res, err := Compile(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 3 {
		t.Fatalf("got %d target results, want 3", len(res.Targets))
	}
	wantWidths := map[string]int{"fg3lite-4": 4, "fg3lite-8": 8, "scalar": 1}
	for i, name := range opts.Targets {
		tr := res.Targets[i]
		if tr.Target != name {
			t.Fatalf("Targets[%d] = %s, want %s (request order)", i, tr.Target, name)
		}
		if tr.Width != wantWidths[name] {
			t.Errorf("%s: width %d, want %d", name, tr.Width, wantWidths[name])
		}
		if tr.Program == nil {
			t.Fatalf("%s: no assembly program", name)
		}
		if tr.VIR == nil || tr.VIR.Width != tr.Width {
			t.Errorf("%s: missing or wrong-width IR", name)
		}
		if tr.C == "" {
			t.Errorf("%s: no C output", name)
		}
		if tr.Cycles <= 0 {
			t.Errorf("%s: no simulated cycle count", name)
		}
		if tr.Cost <= 0 {
			t.Errorf("%s: non-positive cost %g", name, tr.Cost)
		}
	}
	// Primary fields mirror the first requested target.
	if res.Program != res.Targets[0].Program || res.C != res.Targets[0].C ||
		res.VIR != res.Targets[0].VIR || res.Optimized != res.Targets[0].Optimized {
		t.Error("primary result fields do not mirror Targets[0]")
	}
	// The scalar target must not use vector instructions.
	for _, in := range res.Targets[2].VIR.Instrs {
		if in.Op.IsVectorValue() {
			t.Fatalf("scalar target IR contains vector op %s", in.Op)
		}
	}
	// Every target's program computes the specification.
	r := rand.New(rand.NewSource(7))
	in := randIn(r, l)
	env := expr.NewEnv()
	for k, v := range in {
		env.Arrays[k] = v
	}
	want, err := l.Spec.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	flat := want.AsSlice()
	for _, name := range opts.Targets {
		got, _, err := res.RunTarget(name, in, nil)
		if err != nil {
			t.Fatalf("%s: RunTarget: %v", name, err)
		}
		for i, wv := range flat {
			if math.Abs(got["c"][i]-wv) > 1e-9 {
				t.Fatalf("%s: c[%d] = %g, want %g", name, i, got["c"][i], wv)
			}
		}
	}
	if _, _, err := res.RunTarget("fg3lite-16", in, nil); err == nil {
		t.Error("RunTarget accepted a target that was not compiled")
	}
}

// TestMultiTargetDedup: duplicate names collapse, order preserved.
func TestMultiTargetDedup(t *testing.T) {
	opts := testOpts()
	opts.Targets = []string{"fg3lite-8", "fg3lite-4", "fg3lite-8"}
	targets, err := resolveTargets(opts.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 || targets[0].Name != "fg3lite-8" || targets[1].Name != "fg3lite-4" {
		t.Fatalf("resolveTargets = %v", targets)
	}
}

func TestResolveTargetsLegacyWidth(t *testing.T) {
	for _, tc := range []struct {
		width int
		want  string
	}{{0, "fg3lite-4"}, {4, "fg3lite-4"}, {8, "fg3lite-8"}, {2, "fg3lite-2"}, {1, "scalar"}} {
		opts := Options{Width: tc.width}.withDefaults()
		targets, err := resolveTargets(opts)
		if err != nil {
			t.Fatalf("width %d: %v", tc.width, err)
		}
		if len(targets) != 1 || targets[0].Name != tc.want {
			t.Fatalf("width %d resolved to %v, want %s", tc.width, targets, tc.want)
		}
	}
	if _, err := resolveTargets(Options{Target: "no-such-machine"}.withDefaults()); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// TestNoBackendError: a registered target without an assembly backend still
// compiles to IR and C, and Run reports the typed ErrNoBackend.
func TestNoBackendError(t *testing.T) {
	custom := &isa.Target{
		Name:        "cc-only-4",
		Width:       4,
		ShuffleCaps: isa.ShuffleCaps{SingleRegister: true, TwoRegister: true},
		HasAssembly: false,
	}
	if err := isa.RegisterTarget(custom); err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.Target = "cc-only-4"
	res, err := Compile(kernels.MatMul(2, 2, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Program != nil {
		t.Fatal("backend-less target produced assembly")
	}
	if res.C == "" {
		t.Fatal("backend-less target produced no C")
	}
	_, _, err = res.Run(nil, nil)
	if !errors.Is(err, ErrNoBackend) {
		t.Fatalf("Run error = %v, want ErrNoBackend", err)
	}
	var nbe *NoBackendError
	if !errors.As(err, &nbe) || nbe.Target != "cc-only-4" {
		t.Fatalf("error does not name the target: %v", err)
	}
	_, _, err = res.RunTarget("cc-only-4", nil, nil)
	if !errors.Is(err, ErrNoBackend) {
		t.Fatalf("RunTarget error = %v, want ErrNoBackend", err)
	}
}
