package diospyros

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diospyros/internal/expr"
	"diospyros/internal/kernels"
	"diospyros/internal/vir"
)

// TestExtraRulesRecip exercises the §6 extension path: a user rewrite rule
// introducing a target-specific reciprocal, made attractive with OpCost.
func TestExtraRulesRecip(t *testing.T) {
	src := `
kernel inv4(d[4]) -> (out[4]) {
    for i in 0..4 {
        out[i] = 1.0 / d[i];
    }
}
`
	opts := testOpts()
	opts.ExtraRules = []RewriteRule{
		{Name: "one-over-to-recip", LHS: "(/ 1 ?x)", RHS: "(func recip ?x)"},
	}
	opts.OpCost = map[string]float64{"func:recip": 0.5, "VecFunc:recip": 0.5}
	res, err := CompileSource(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.C, "recip_v(") {
		t.Fatalf("recip not chosen:\n%s", res.C)
	}
	funcs := map[string]func([]float64) float64{
		"recip": func(a []float64) float64 { return 1 / a[0] },
	}
	out, _, err := res.Run(map[string][]float64{"d": {1, 2, 4, 8}}, funcs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if out["out"][i] != want[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out["out"][i], want[i])
		}
	}
}

func TestExtraRulesRejectMalformed(t *testing.T) {
	opts := testOpts()
	for _, r := range []RewriteRule{
		{Name: "bad-lhs", LHS: "(bogus ?x)", RHS: "?x"},
		{Name: "bad-rhs", LHS: "(+ ?x 0)", RHS: "(+ ?x"},
		{Name: "unbound", LHS: "(+ ?x 0)", RHS: "?y"},
	} {
		opts.ExtraRules = []RewriteRule{r}
		if _, err := Compile(kernels.MatMul(2, 2, 2), opts); err == nil {
			t.Errorf("rule %s accepted, want error", r.Name)
		}
	}
}

// TestOpCostSteersExtraction makes vector MACs prohibitively expensive and
// checks extraction routes around them.
func TestOpCostSteersExtraction(t *testing.T) {
	l := kernels.MatMul(2, 2, 2)
	base, err := Compile(l, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(base.C, "PDX_MAC_MXF32") {
		t.Skip("base compile does not use MAC; nothing to steer")
	}
	opts := testOpts()
	opts.OpCost = map[string]float64{"VecMAC": 1e9}
	res, err := Compile(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.C, "PDX_MAC_MXF32") {
		t.Fatalf("VecMAC extracted despite prohibitive cost:\n%s", res.C)
	}
	// Result must still be correct.
	checkCompiled(t, l, opts)
}

// TestWidthParametric compiles at non-default widths; every width now gets
// IR, C, and runnable assembly (targets are width-parametric).
func TestWidthParametric(t *testing.T) {
	for _, w := range []int{2, 8} {
		l := kernels.MatMul(2, 2, 2)
		opts := testOpts()
		opts.Width = w
		res, err := Compile(l, opts)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if res.Program == nil {
			t.Fatalf("width %d: no assembly program", w)
		}
		if res.VIR.Width != w {
			t.Fatalf("width %d: IR width %d", w, res.VIR.Width)
		}
		if len(res.C) == 0 {
			t.Fatalf("width %d: no C output", w)
		}
		r := rand.New(rand.NewSource(int64(w)))
		in := randIn(r, l)
		got, _, err := res.Run(in, nil)
		if err != nil {
			t.Fatalf("width %d: Run: %v", w, err)
		}
		env := expr.NewEnv()
		for k, v := range in {
			env.Arrays[k] = v
		}
		want, err := l.Spec.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		for i, wv := range want.AsSlice() {
			if math.Abs(got["c"][i]-wv) > 1e-9 {
				t.Fatalf("width %d: c[%d] = %g, want %g", w, i, got["c"][i], wv)
			}
		}
	}
}

func TestEnableACCompiles(t *testing.T) {
	opts := testOpts()
	opts.EnableAC = true
	opts.NodeLimit = 100_000
	checkCompiled(t, kernels.MatMul(2, 2, 2), opts)
}

// TestGeneratedCodeRegisterPressure checks the codegen's recycling
// allocator keeps even the largest suite kernels within plausible DSP
// register files (the real G3 class has on the order of 32–64 registers
// per file; FG3-lite sizes its files to the program).
func TestGeneratedCodeRegisterPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles large kernels")
	}
	for _, mk := range []func() *Result{
		func() *Result { r, _ := Compile(kernels.Conv2D(16, 16, 4, 4), testOpts()); return r },
		func() *Result { r, _ := Compile(kernels.MatMul(16, 16, 16), testOpts()); return r },
		func() *Result { r, _ := Compile(kernels.QRDecomp(4), testOpts()); return r },
	} {
		res := mk()
		if res == nil || res.Program == nil {
			t.Fatal("compile failed")
		}
		maxF, maxV := 0, 0
		for _, in := range res.Program.Instrs {
			if in.Op.IsVector() {
				if in.Dst > maxV {
					maxV = in.Dst
				}
			} else if in.Dst > maxF {
				maxF = in.Dst
			}
		}
		t.Logf("%s: %d vector regs, %d scalar/int regs", res.Kernel.Name, maxV+1, maxF+1)
		if maxV+1 > 64 {
			t.Errorf("%s: %d vector registers exceeds a realistic file", res.Kernel.Name, maxV+1)
		}
	}
}

func TestACWithBackoffCompilesLargerKernel(t *testing.T) {
	// Full AC rules on a 3x3 matmul blow up quickly; the backoff scheduler
	// keeps the run inside a modest node budget and the result correct.
	opts := testOpts()
	opts.EnableAC = true
	opts.UseBackoff = true
	opts.NodeLimit = 150_000
	checkCompiled(t, kernels.MatMul(3, 3, 3), opts)
}

// TestWidthParametricSemantics executes non-default-width compilations via
// the IR interpreter (FG3-lite assembly is width-4 only) and checks the
// outputs against the specification.
func TestWidthParametricSemantics(t *testing.T) {
	for _, w := range []int{2, 8} {
		l := kernels.Conv2D(3, 3, 2, 2)
		opts := testOpts()
		opts.Width = w
		res, err := Compile(l, opts)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		r := rand.New(rand.NewSource(int64(w)))
		in := randIn(r, l)
		got, err := vir.Interp(res.VIR, in, nil)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		env := expr.NewEnv()
		for k, v := range in {
			env.Arrays[k] = v
		}
		want, err := l.Spec.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		flat := want.AsSlice()
		for i, wv := range flat {
			if math.Abs(got["o"][i]-wv) > 1e-9 {
				t.Fatalf("width %d: o[%d] = %g, want %g", w, i, got["o"][i], wv)
			}
		}
		// A wide target must actually use vectors; at width 2 the cost
		// model may legitimately prefer scalar code (2-lane SIMD barely
		// amortizes its data movement).
		if w >= 4 {
			usedVec := false
			for _, in := range res.VIR.Instrs {
				if in.Op.IsVectorValue() {
					usedVec = true
				}
			}
			if !usedVec {
				t.Errorf("width %d: no vector ops in IR", w)
			}
		}
	}
}

// TestTestdataKernelsCompile compiles every sample kernel shipped under
// testdata/ (the CLI's example inputs) with validation enabled.
func TestTestdataKernelsCompile(t *testing.T) {
	files, err := filepath.Glob("testdata/*.dios")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata kernels found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		opts := testOpts()
		opts.Validate = true
		res, err := CompileSource(string(src), opts)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		checkCompiled(t, res.Kernel, opts)
	}
}
