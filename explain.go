package diospyros

import (
	"fmt"
	"sort"

	"diospyros/internal/egraph"
	"diospyros/internal/expr"
	"diospyros/internal/extract"
	"diospyros/internal/telemetry"
	"diospyros/internal/vir"
)

// buildExplanation produces the provenance report for the extracted
// program (the -explain flag). It walks the chosen term from the root
// e-class, looks up each selected e-node's recorded justification, and
// aggregates the justifications into ordered rewrite steps: which rule
// fired, in which saturation iteration, and how many extracted nodes it
// accounts for. Nodes with no justification belong to the input program.
//
// Shuffles are not e-graph rewrites in this compiler — data movement is
// synthesized during lowering (internal/lower/shuffle.go) — so the report
// also lists the lowering-introduced Shuffle/Select instructions as
// post-saturation steps ("lower-shuffle"/"lower-select", iteration 0).
// Returns nil when provenance recording was not enabled.
func buildExplanation(g *egraph.EGraph, ex *extract.Extractor, root egraph.ClassID, ir *vir.Program) *telemetry.Explanation {
	if g == nil || !g.ProvenanceEnabled() || ex == nil {
		return nil
	}
	e := &telemetry.Explanation{}
	steps := map[string]*telemetry.ExplanationStep{}
	seen := map[egraph.ClassID]bool{}
	var walk func(egraph.ClassID)
	walk = func(c egraph.ClassID) {
		c = g.Find(c)
		if seen[c] {
			return
		}
		seen[c] = true
		b, ok := ex.Best(c)
		if !ok {
			return
		}
		if j, ok := g.NodeProvenance(b.Node); ok {
			e.RewrittenNodes++
			key := fmt.Sprintf("%s\x00%d", j.Rule, j.Iteration)
			s := steps[key]
			if s == nil {
				s = &telemetry.ExplanationStep{
					Rule:      j.Rule,
					Kind:      telemetry.ClassifyRule(j.Rule),
					Iteration: j.Iteration,
					Example:   renderENode(g, b.Node),
				}
				steps[key] = s
			}
			s.Nodes++
		} else {
			e.InputNodes++
		}
		for _, a := range b.Node.Args {
			walk(a)
		}
	}
	walk(root)

	keys := make([]string, 0, len(steps))
	for k := range steps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Steps = append(e.Steps, *steps[k])
	}

	// Lowering-introduced data movement: one step per instruction kind,
	// with the first occurrence as the example.
	if ir != nil {
		shuffle := telemetry.ExplanationStep{Rule: "lower-shuffle", Kind: telemetry.KindShuffle}
		sel := telemetry.ExplanationStep{Rule: "lower-select", Kind: telemetry.KindShuffle}
		for _, in := range ir.Instrs {
			switch in.Op {
			case vir.Shuffle:
				if shuffle.Nodes == 0 {
					shuffle.Example = in.String()
				}
				shuffle.Nodes++
			case vir.Select:
				if sel.Nodes == 0 {
					sel.Example = in.String()
				}
				sel.Nodes++
			}
		}
		if shuffle.Nodes > 0 {
			e.Steps = append(e.Steps, shuffle)
		}
		if sel.Nodes > 0 {
			e.Steps = append(e.Steps, sel)
		}
	}

	e.Sort()
	return e
}

// renderENode prints an e-node with its child classes as placeholder
// symbols (e.g. "(VecAdd c12 c37)") for the explanation's example column.
func renderENode(g *egraph.EGraph, n egraph.ENode) string {
	e := &expr.Expr{Op: n.Op, Lit: n.Lit, Sym: g.SymName(n.Sym), Idx: n.Idx}
	for _, a := range n.Args {
		e.Args = append(e.Args, expr.Sym(fmt.Sprintf("c%d", g.Find(a))))
	}
	return e.String()
}
