module diospyros

go 1.22
