package diospyros

import (
	"context"
	"fmt"
	"math"

	"diospyros/internal/cost"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
	"diospyros/internal/extract"
	"diospyros/internal/frontend"
	"diospyros/internal/isa"
	"diospyros/internal/kernel"
	"diospyros/internal/lower"
	"diospyros/internal/pipeline"
	"diospyros/internal/rules"
	"diospyros/internal/vir"
)

// Stage names of the compile pipeline, in execution order. They label
// telemetry spans in Result.Trace and prefix stage errors.
const (
	StageLift     = "lift"
	StageSaturate = "saturate"
	StageExtract  = "extract"
	StageLower    = "lower"
	StageCodegen  = "codegen"
	StageSimulate = "simulate"
	StageValidate = "validate"
)

// compileState is the shared state threaded through the compile pipeline.
// Each stage reads the fields of earlier stages and fills in its own. The
// per-target stages (extract through validate) iterate over targets/
// perTarget; the legacy single-target fields mirror perTarget[0].
type compileState struct {
	opts Options

	targets []*isa.Target // resolved before the pipeline runs

	src    string         // kernel source text ("" when lifted directly)
	lifted *kernel.Lifted // after lift

	g          *egraph.EGraph // after saturate
	root       egraph.ClassID
	report     egraph.Report
	extractors []*extract.Extractor // after extract, one per target
	perTarget  []TargetResult       // filled in stage by stage
	extractor  *extract.Extractor   // = extractors[0]
	optimized  *expr.Expr
	ir         *vir.Program // after lower
	cText      string       // after codegen
	program    *isa.Program
	validated  bool // after validate
}

// compilePipeline assembles the paper's five-stage pipeline. The lift
// stage is skipped when the caller hands over an already-lifted kernel;
// validation is skipped unless requested.
func compilePipeline() *pipeline.Pipeline[*compileState] {
	return pipeline.New(
		pipeline.Stage[*compileState]{
			Name: StageLift,
			Skip: func(st *compileState) bool { return st.lifted != nil },
			Run:  stageLift,
		},
		pipeline.Stage[*compileState]{Name: StageSaturate, Run: stageSaturate},
		pipeline.Stage[*compileState]{Name: StageExtract, Run: stageExtract},
		pipeline.Stage[*compileState]{Name: StageLower, Run: stageLower},
		pipeline.Stage[*compileState]{Name: StageCodegen, Run: stageCodegen},
		pipeline.Stage[*compileState]{
			Name: StageSimulate,
			Skip: func(st *compileState) bool { return len(st.targets) < 2 },
			Run:  stageSimulate,
		},
		pipeline.Stage[*compileState]{
			Name: StageValidate,
			Skip: func(st *compileState) bool { return !st.opts.Validate },
			Run:  stageValidate,
		},
	)
}

// stageLift parses and symbolically evaluates kernel source (§3.1).
func stageLift(_ context.Context, st *compileState) error {
	k, err := frontend.Parse(st.src)
	if err != nil {
		return err
	}
	st.lifted, err = frontend.Lift(k)
	return err
}

// stageSaturate runs equality saturation (§3.2–3.3). Options.Timeout
// bounds only this stage, expressed as a context deadline inside
// egraph.RunContext; hitting it is not an error (partial e-graphs still
// extract, the Figure 6 behavior). External cancellation is.
func stageSaturate(ctx context.Context, st *compileState) error {
	// One rule set covers every requested target: a chunk rule per distinct
	// vector width populates the shared e-graph with all decompositions at
	// once, and per-target extraction later picks one via the cost model.
	var widths []int
	seen := map[int]bool{}
	for _, t := range st.targets {
		if t.Width > 1 && !seen[t.Width] {
			seen[t.Width] = true
			widths = append(widths, t.Width)
		}
	}
	cfg := rules.Config{
		Width:         isa.Width,
		Widths:        widths,
		EnableAC:      st.opts.EnableAC,
		DisableVector: st.opts.DisableVectorRules || len(widths) == 0,
	}
	ruleSet := cfg.Rules()
	for _, r := range st.opts.ExtraRules {
		rw, err := egraph.ParseRewrite(r.Name, r.LHS, r.RHS)
		if err != nil {
			return err
		}
		ruleSet = append(ruleSet, rw)
	}
	st.g = egraph.New()
	st.root = st.g.AddExpr(st.lifted.Spec)
	if st.opts.Explain {
		// Enabled after the spec is added so input nodes stay unattributed
		// and every justified node traces back to a rewrite.
		st.g.EnableProvenance()
	}
	limits := egraph.Limits{
		MaxNodes:      st.opts.NodeLimit,
		MaxIterations: st.opts.MaxIterations,
		Timeout:       st.opts.Timeout,
		Progress:      st.opts.Progress,
		Journal:       st.opts.Journal,
		MatchWorkers:  st.opts.MatchWorkers,
	}
	if st.opts.UseBackoff {
		limits.Backoff = &egraph.Backoff{}
	}
	if st.opts.Journal != nil {
		// Arm the best-cost trajectory: after each iteration the journal
		// samples what extraction would pay for the root right now, using
		// the same model the extract stage will use.
		model := resolveCostModel(st.opts, st.targets[0])
		st.opts.Journal.SampleCost([]egraph.ClassID{st.root},
			func(g *egraph.EGraph, root egraph.ClassID) (float64, bool) {
				c := extract.New(g, model).Cost(root)
				if math.IsInf(c, 0) {
					return 0, false
				}
				return c, true
			})
	}
	st.report = egraph.RunContext(ctx, st.g, ruleSet, limits)
	if st.report.Reason == egraph.StopCancelled {
		// Prefer the cancellation cause: a watchdog abort
		// (*telemetry.AbortError) stays distinguishable from a plain
		// cancel or deadline all the way up the error chain.
		if err := context.Cause(ctx); err != nil {
			return err
		}
		return context.Canceled
	}
	return nil
}

// resolveCostModel materializes the extraction cost model for one target:
// the explicit override, the scalar-ablation model, or the target-derived
// Diospyros data-movement model (width-gated so wrong-width decompositions
// are unextractable), with per-op overrides applied on top.
func resolveCostModel(opts Options, t *isa.Target) cost.Model {
	model := opts.CostModel
	if model == nil {
		if opts.DisableVectorRules {
			model = cost.ScalarOnly{}
		} else {
			model = cost.ForTarget(t)
		}
	}
	if len(opts.OpCost) > 0 {
		model = cost.Overrides{Base: model, PerOp: opts.OpCost}
	}
	return model
}

// stageExtract picks the cheapest program from the e-graph (§3.4), once per
// target: the saturated e-graph is shared, the cost model is not.
func stageExtract(_ context.Context, st *compileState) error {
	st.extractors = make([]*extract.Extractor, len(st.targets))
	st.perTarget = make([]TargetResult, len(st.targets))
	for i, t := range st.targets {
		ex := extract.New(st.g, resolveCostModel(st.opts, t))
		optimized, err := ex.Expr(st.root)
		if err != nil {
			return fmt.Errorf("extraction failed for %s: %w", t, err)
		}
		st.extractors[i] = ex
		st.perTarget[i] = TargetResult{
			Target:    t.Name,
			Width:     t.Width,
			Optimized: optimized,
			Cost:      ex.Cost(st.root),
		}
	}
	st.extractor = st.extractors[0]
	st.optimized = st.perTarget[0].Optimized
	return nil
}

// stageLower lowers each target's extracted program to the vector IR at
// that target's width and runs the backend cleanup (§4): LVN, shuffle
// fusion, DCE, then live-range splitting only when the kernel's register
// pressure exceeds a realistic file (56 of 64 registers, leaving headroom
// for codegen temporaries).
func stageLower(_ context.Context, st *compileState) error {
	for i, t := range st.targets {
		tr := &st.perTarget[i]
		raw, err := lower.Lower(st.lifted.Name, tr.Optimized, t.Width, st.lifted)
		if err != nil {
			return fmt.Errorf("lowering failed for %s: %w", t, err)
		}
		tr.VIR = vir.BoundPressure(vir.Optimize(raw), 56)
	}
	st.ir = st.perTarget[0].VIR
	return nil
}

// stageCodegen emits, per target, C-with-intrinsics text and — for targets
// with an assembly backend — simulator assembly.
func stageCodegen(_ context.Context, st *compileState) error {
	for i, t := range st.targets {
		tr := &st.perTarget[i]
		tr.C = codegenC(tr.VIR)
		if t.HasAssembly {
			p, err := codegenISA(tr.VIR, t)
			if err != nil {
				return fmt.Errorf("code generation failed for %s: %w", t, err)
			}
			tr.Program = p
		}
	}
	st.cText = st.perTarget[0].C
	st.program = st.perTarget[0].Program
	return nil
}

// stageSimulate runs each target's program on the cycle-level simulator
// with deterministic inputs, recording per-target cycle counts so
// multi-target compiles answer "which machine wins on this kernel" in one
// call. Only runs when more than one target is requested; simulation
// failures (e.g. uninterpreted functions with no binding) leave Cycles 0
// rather than failing the compile.
func stageSimulate(_ context.Context, st *compileState) error {
	inputs := deterministicInputs(st.lifted, 1)
	for i := range st.perTarget {
		tr := &st.perTarget[i]
		if tr.Program == nil {
			continue
		}
		if _, sres, err := codegenExecute(tr.Program, inputs, st.lifted.Inputs, st.lifted.Outputs, nil); err == nil {
			tr.Cycles = sres.Cycles
		}
	}
	return nil
}

// stageValidate runs translation validation (§3.4) on every target's
// extracted program against the lifted specification.
func stageValidate(_ context.Context, st *compileState) error {
	for i, t := range st.targets {
		tr := &st.perTarget[i]
		if err := validateCheck(st.lifted, tr.Optimized); err != nil {
			return fmt.Errorf("translation validation failed for %s: %w", t, err)
		}
		tr.Validated = true
	}
	st.validated = st.perTarget[0].Validated
	return nil
}
