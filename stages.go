package diospyros

import (
	"context"
	"fmt"
	"math"

	"diospyros/internal/cost"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
	"diospyros/internal/extract"
	"diospyros/internal/frontend"
	"diospyros/internal/isa"
	"diospyros/internal/kernel"
	"diospyros/internal/lower"
	"diospyros/internal/pipeline"
	"diospyros/internal/rules"
	"diospyros/internal/vir"
)

// Stage names of the compile pipeline, in execution order. They label
// telemetry spans in Result.Trace and prefix stage errors.
const (
	StageLift     = "lift"
	StageSaturate = "saturate"
	StageExtract  = "extract"
	StageLower    = "lower"
	StageCodegen  = "codegen"
	StageValidate = "validate"
)

// compileState is the shared state threaded through the compile pipeline.
// Each stage reads the fields of earlier stages and fills in its own.
type compileState struct {
	opts Options

	src    string         // kernel source text ("" when lifted directly)
	lifted *kernel.Lifted // after lift

	g         *egraph.EGraph // after saturate
	root      egraph.ClassID
	report    egraph.Report
	extractor *extract.Extractor // after extract
	optimized *expr.Expr
	ir        *vir.Program // after lower
	cText     string       // after codegen
	program   *isa.Program
	validated bool // after validate
}

// compilePipeline assembles the paper's five-stage pipeline. The lift
// stage is skipped when the caller hands over an already-lifted kernel;
// validation is skipped unless requested.
func compilePipeline() *pipeline.Pipeline[*compileState] {
	return pipeline.New(
		pipeline.Stage[*compileState]{
			Name: StageLift,
			Skip: func(st *compileState) bool { return st.lifted != nil },
			Run:  stageLift,
		},
		pipeline.Stage[*compileState]{Name: StageSaturate, Run: stageSaturate},
		pipeline.Stage[*compileState]{Name: StageExtract, Run: stageExtract},
		pipeline.Stage[*compileState]{Name: StageLower, Run: stageLower},
		pipeline.Stage[*compileState]{Name: StageCodegen, Run: stageCodegen},
		pipeline.Stage[*compileState]{
			Name: StageValidate,
			Skip: func(st *compileState) bool { return !st.opts.Validate },
			Run:  stageValidate,
		},
	)
}

// stageLift parses and symbolically evaluates kernel source (§3.1).
func stageLift(_ context.Context, st *compileState) error {
	k, err := frontend.Parse(st.src)
	if err != nil {
		return err
	}
	st.lifted, err = frontend.Lift(k)
	return err
}

// stageSaturate runs equality saturation (§3.2–3.3). Options.Timeout
// bounds only this stage, expressed as a context deadline inside
// egraph.RunContext; hitting it is not an error (partial e-graphs still
// extract, the Figure 6 behavior). External cancellation is.
func stageSaturate(ctx context.Context, st *compileState) error {
	cfg := rules.Config{
		Width:         st.opts.Width,
		EnableAC:      st.opts.EnableAC,
		DisableVector: st.opts.DisableVectorRules,
	}
	ruleSet := cfg.Rules()
	for _, r := range st.opts.ExtraRules {
		rw, err := egraph.ParseRewrite(r.Name, r.LHS, r.RHS)
		if err != nil {
			return err
		}
		ruleSet = append(ruleSet, rw)
	}
	st.g = egraph.New()
	st.root = st.g.AddExpr(st.lifted.Spec)
	if st.opts.Explain {
		// Enabled after the spec is added so input nodes stay unattributed
		// and every justified node traces back to a rewrite.
		st.g.EnableProvenance()
	}
	limits := egraph.Limits{
		MaxNodes:      st.opts.NodeLimit,
		MaxIterations: st.opts.MaxIterations,
		Timeout:       st.opts.Timeout,
		Progress:      st.opts.Progress,
		Journal:       st.opts.Journal,
		MatchWorkers:  st.opts.MatchWorkers,
	}
	if st.opts.UseBackoff {
		limits.Backoff = &egraph.Backoff{}
	}
	if st.opts.Journal != nil {
		// Arm the best-cost trajectory: after each iteration the journal
		// samples what extraction would pay for the root right now, using
		// the same model the extract stage will use.
		model := resolveCostModel(st.opts)
		st.opts.Journal.SampleCost([]egraph.ClassID{st.root},
			func(g *egraph.EGraph, root egraph.ClassID) (float64, bool) {
				c := extract.New(g, model).Cost(root)
				if math.IsInf(c, 0) {
					return 0, false
				}
				return c, true
			})
	}
	st.report = egraph.RunContext(ctx, st.g, ruleSet, limits)
	if st.report.Reason == egraph.StopCancelled {
		// Prefer the cancellation cause: a watchdog abort
		// (*telemetry.AbortError) stays distinguishable from a plain
		// cancel or deadline all the way up the error chain.
		if err := context.Cause(ctx); err != nil {
			return err
		}
		return context.Canceled
	}
	return nil
}

// resolveCostModel materializes the extraction cost model from the
// options: the explicit override, the scalar-ablation model, or the default
// Diospyros data-movement model, with per-op overrides applied on top.
func resolveCostModel(opts Options) cost.Model {
	model := opts.CostModel
	if model == nil {
		if opts.DisableVectorRules {
			model = cost.ScalarOnly{}
		} else {
			model = cost.Diospyros{Width: opts.Width}
		}
	}
	if len(opts.OpCost) > 0 {
		model = cost.Overrides{Base: model, PerOp: opts.OpCost}
	}
	return model
}

// stageExtract picks the cheapest program from the e-graph (§3.4).
func stageExtract(_ context.Context, st *compileState) error {
	st.extractor = extract.New(st.g, resolveCostModel(st.opts))
	optimized, err := st.extractor.Expr(st.root)
	if err != nil {
		return fmt.Errorf("extraction failed: %w", err)
	}
	st.optimized = optimized
	return nil
}

// stageLower lowers the extracted program to the vector IR and runs the
// backend cleanup (§4): LVN, shuffle fusion, DCE, then live-range
// splitting only when the kernel's register pressure exceeds a realistic
// file (56 of 64 registers, leaving headroom for codegen temporaries).
func stageLower(_ context.Context, st *compileState) error {
	raw, err := lower.Lower(st.lifted.Name, st.optimized, st.opts.Width, st.lifted)
	if err != nil {
		return fmt.Errorf("lowering failed: %w", err)
	}
	st.ir = vir.BoundPressure(vir.Optimize(raw), 56)
	return nil
}

// stageCodegen emits C-with-intrinsics text and, at the native width,
// FG3-lite assembly.
func stageCodegen(_ context.Context, st *compileState) error {
	st.cText = codegenC(st.ir)
	if st.opts.Width == isa.Width {
		p, err := codegenISA(st.ir)
		if err != nil {
			return fmt.Errorf("code generation failed: %w", err)
		}
		st.program = p
	}
	return nil
}

// stageValidate runs translation validation (§3.4) on the extracted
// program against the lifted specification.
func stageValidate(_ context.Context, st *compileState) error {
	if err := validateCheck(st.lifted, st.optimized); err != nil {
		return fmt.Errorf("translation validation failed: %w", err)
	}
	st.validated = true
	return nil
}
