// Command doccheck enforces the godoc contract on selected packages: every
// exported type, function, method, and var/const block must carry a doc
// comment, and every package must have a package comment. It is the CI
// replacement for the retired golint missing-doc checks, built on go/ast
// alone so it needs nothing outside the standard library.
//
//	go run ./tools/doccheck ./internal/egraph ./internal/serve ...
//
// Each violation prints as file:line: message; the exit status is 1 when
// any were found. Test files and generated files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> ...")
		os.Exit(2)
	}
	var violations []string
	for _, dir := range os.Args[1:] {
		v, err := checkDir(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported declarations\n", len(violations))
		os.Exit(1)
	}
}

// checkDir parses one package directory and reports every exported
// declaration without a doc comment.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			for name, f := range pkg.Files {
				report(f.Package, "package %s has no package comment (add one to %s or another file)", pkg.Name, filepath.Base(name))
				break
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return out, nil
}

// checkDecl reports the exported names a top-level declaration leaves
// undocumented. A doc comment on a grouped var/const/type block covers
// every name in the block, matching godoc's rendering.
func checkDecl(decl ast.Decl, report func(token.Pos, string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Doc == nil && d.Name.IsExported() {
			kind := "function"
			if d.Recv != nil {
				if !receiverExported(d.Recv) {
					return // method on an unexported type: not in godoc
				}
				kind = "method"
			}
			report(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			return // block comment documents the whole group
		}
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil {
					report(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
				}
			case *ast.ValueSpec:
				if sp.Doc != nil || sp.Comment != nil {
					continue // per-spec doc or trailing comment is enough
				}
				for _, name := range sp.Names {
					if name.IsExported() {
						report(name.Pos(), "exported %s %s has no doc comment",
							map[token.Token]string{token.CONST: "const", token.VAR: "var"}[d.Tok], name.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver names an exported
// type (methods on unexported types do not appear in godoc).
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
