package diospyros

import (
	"os"
	"testing"

	"diospyros/internal/telemetry"
)

// TestExplainMatMul2x2 is the acceptance check for -explain: compiling the
// 2x2 matmul with provenance on yields an explanation naming at least one
// vectorization rule and at least one shuffle step.
func TestExplainMatMul2x2(t *testing.T) {
	src, err := os.ReadFile("testdata/matmul2x2.dios")
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.Explain = true
	res, err := CompileSource(string(src), opts)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Trace.Explanation
	if e == nil {
		t.Fatal("Explain option set but Trace.Explanation is nil")
	}
	if !e.HasKind(telemetry.KindVectorization) {
		t.Errorf("no vectorization rule in explanation:\n%s", e.Format())
	}
	if !e.HasKind(telemetry.KindShuffle) {
		t.Errorf("no shuffle step in explanation:\n%s", e.Format())
	}
	if e.RewrittenNodes == 0 {
		t.Error("explanation attributes zero e-nodes to rewrites")
	}
	for _, s := range e.Steps {
		if s.Nodes <= 0 {
			t.Errorf("step %s has node count %d", s.Rule, s.Nodes)
		}
	}
	if res.Trace.Counter("provenance.nodes") == 0 {
		t.Error("provenance.nodes counter not recorded")
	}
}

// TestExplainOffByDefault: without Options.Explain the compiler records no
// explanation and no provenance counters (the zero-overhead contract).
func TestExplainOffByDefault(t *testing.T) {
	src := `
kernel vadd4(a[4], b[4]) -> (c[4]) {
    for i in 0..4 {
        c[i] = a[i] + b[i];
    }
}
`
	res, err := CompileSource(src, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Explanation != nil {
		t.Fatal("Trace.Explanation populated without Options.Explain")
	}
	if res.Trace.Counter("provenance.nodes") != 0 {
		t.Fatal("provenance counters recorded while disabled")
	}
}
