package diospyros

import (
	"math/rand"

	"diospyros/internal/codegen"
	"diospyros/internal/expr"
	"diospyros/internal/isa"
	"diospyros/internal/kernel"
	"diospyros/internal/sim"
	"diospyros/internal/validate"
	"diospyros/internal/vir"
)

// Thin indirections keeping the pipeline stages free of backend imports.

func validateCheck(l *kernel.Lifted, optimized *expr.Expr) error {
	return validate.Check(l, optimized)
}

func codegenC(ir *vir.Program) string { return codegen.ToC(ir) }

func codegenISA(ir *vir.Program, t *isa.Target) (*isa.Program, error) {
	return codegen.ToISA(ir, t)
}

// deterministicInputs fills every kernel input with reproducible random
// tenths in [-10, 10) — the same distribution the CLI's -run harness uses —
// so per-target cycle counts from stageSimulate are comparable across runs.
func deterministicInputs(l *kernel.Lifted, seed int64) map[string][]float64 {
	r := rand.New(rand.NewSource(seed))
	inputs := map[string][]float64{}
	for _, d := range l.Inputs {
		s := make([]float64, d.Len())
		for i := range s {
			s[i] = float64(int(r.Float64()*200-100)) / 10
		}
		inputs[d.Name] = s
	}
	return inputs
}

func codegenExecute(p *isa.Program, inputs map[string][]float64,
	in, out []kernel.ArrayDecl,
	funcs map[string]func([]float64) float64) (map[string][]float64, *sim.Result, error) {
	return codegen.Execute(p, inputs, in, out, funcs)
}
