package diospyros

import (
	"diospyros/internal/codegen"
	"diospyros/internal/isa"
	"diospyros/internal/kernel"
	"diospyros/internal/sim"
	"diospyros/internal/vir"
)

// Thin indirections keeping diospyros.go free of backend imports.

func codegenC(ir *vir.Program) string { return codegen.ToC(ir) }

func codegenISA(ir *vir.Program) (*isa.Program, error) { return codegen.ToISA(ir) }

func codegenExecute(p *isa.Program, inputs map[string][]float64,
	in, out []kernel.ArrayDecl,
	funcs map[string]func([]float64) float64) (map[string][]float64, *sim.Result, error) {
	return codegen.Execute(p, inputs, in, out, funcs)
}
