package diospyros

import (
	"diospyros/internal/codegen"
	"diospyros/internal/expr"
	"diospyros/internal/isa"
	"diospyros/internal/kernel"
	"diospyros/internal/sim"
	"diospyros/internal/validate"
	"diospyros/internal/vir"
)

// Thin indirections keeping the pipeline stages free of backend imports.

func validateCheck(l *kernel.Lifted, optimized *expr.Expr) error {
	return validate.Check(l, optimized)
}

func codegenC(ir *vir.Program) string { return codegen.ToC(ir) }

func codegenISA(ir *vir.Program) (*isa.Program, error) { return codegen.ToISA(ir) }

func codegenExecute(p *isa.Program, inputs map[string][]float64,
	in, out []kernel.ArrayDecl,
	funcs map[string]func([]float64) float64) (map[string][]float64, *sim.Result, error) {
	return codegen.Execute(p, inputs, in, out, funcs)
}
