// Command diosdiff compares two compilations of the same kernel and
// attributes the delta — the regression-forensics companion to diosbench:
//
//	diosdiff baseline.json current.json            # two saved artifacts
//	diosdiff -kernel "MatMul 2x2" base.json cur.json
//	diosdiff -compile kernel.dios -cur-opts cost:VecMAC=50
//	                                               # two live compiles
//	diosdiff -json d.json -html d.html base.json cur.json
//
// Artifacts are compile trace JSONs (diospyros -json) or per-kernel bench
// arrays (diosbench -json / -bench-json); stale artifacts without the
// diospyros/trace/v1 schema stamp are rejected. In -compile mode the same
// kernel source is compiled twice — under -base-opts and -cur-opts — with
// the search journal armed, then simulated, and the two flight records are
// diffed; option tokens are comma-separated:
//
//	no-vector | ac | backoff | width=N | target=NAME | timeout=DUR |
//	node-limit=N | match-workers=N | cost:OP=V
//
// Like diff(1), the exit status distinguishes outcomes: 0 when the runs
// are equivalent, 1 when they diverge, 2 on usage or artifact errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	diospyros "diospyros"
	"diospyros/internal/buildinfo"
	"diospyros/internal/diff"
	"diospyros/internal/egraph"
)

func main() {
	var (
		compile  = flag.String("compile", "", "kernel source to compile twice (under -base-opts and -cur-opts) instead of reading artifacts")
		baseOpts = flag.String("base-opts", "", "comma-separated option tokens for the baseline compile (see package doc)")
		curOpts  = flag.String("cur-opts", "", "comma-separated option tokens for the current compile")
		kernel   = flag.String("kernel", "", "diff only this kernel ID (artifacts holding many kernels)")
		jsonOut  = flag.String("json", "", "write the diospyros/diff/v1 JSON to this file (- for stdout)")
		htmlOut  = flag.String("html", "", "write the side-by-side HTML report to this file")
		seed     = flag.Int64("seed", 1, "random seed for the -compile mode simulation inputs")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("diosdiff"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var pairs []pair
	var err error
	switch {
	case *compile != "":
		if flag.NArg() != 0 {
			usage("-compile takes no positional artifacts")
		}
		pairs, err = compilePair(ctx, *compile, *baseOpts, *curOpts, *seed)
	case flag.NArg() == 2:
		if *baseOpts != "" || *curOpts != "" {
			usage("-base-opts/-cur-opts require -compile")
		}
		pairs, err = loadPairs(flag.Arg(0), flag.Arg(1), *kernel)
	default:
		usage("expected two artifact files, or -compile kernel.dios")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "diosdiff:", err)
		os.Exit(2)
	}

	divergent := false
	var diffs []*diff.Diff
	for _, p := range pairs {
		d := diff.Compare(p.base, p.cur)
		diffs = append(diffs, d)
		if !d.Empty() {
			divergent = true
		}
		if *jsonOut != "-" { // text verdict, unless JSON owns stdout
			fmt.Print(d.Format())
		}
	}

	if *jsonOut != "" {
		raw, err := marshalDiffs(diffs)
		if err != nil {
			fatal(err)
		}
		if *jsonOut == "-" {
			fmt.Println(string(raw))
		} else if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fatal(err)
		}
	}
	if *htmlOut != "" {
		if len(pairs) != 1 {
			fmt.Fprintln(os.Stderr, "diosdiff: -html needs exactly one kernel; narrow with -kernel")
			os.Exit(2)
		}
		page, err := diff.Report(diffs[0], pairs[0].base, pairs[0].cur)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*htmlOut, page, 0o644); err != nil {
			fatal(err)
		}
	}

	if divergent {
		os.Exit(1)
	}
}

// pair is one kernel's two sides, ready to diff.
type pair struct{ base, cur diff.Input }

// loadPairs reads both artifacts and aligns them kernel by kernel: the
// named kernel when -kernel is given, otherwise every kernel the two
// artifacts share (a bare trace artifact matches whatever the other side
// holds exactly one of).
func loadPairs(basePath, curPath, kernel string) ([]pair, error) {
	base, err := loadFile(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := loadFile(curPath)
	if err != nil {
		return nil, err
	}
	if kernel != "" {
		b, ok := base.Find(kernel)
		if !ok {
			return nil, fmt.Errorf("%s: no kernel %q", base.Label, kernel)
		}
		c, ok := cur.Find(kernel)
		if !ok {
			return nil, fmt.Errorf("%s: no kernel %q", cur.Label, kernel)
		}
		return []pair{{b, c}}, nil
	}
	// Two bare traces pair directly.
	if len(base.Inputs) == 1 && len(cur.Inputs) == 1 {
		return []pair{{base.Inputs[0], cur.Inputs[0]}}, nil
	}
	var pairs []pair
	for _, b := range base.Inputs {
		if c, ok := cur.Find(b.Kernel); ok {
			pairs = append(pairs, pair{b, c})
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("artifacts share no kernels (%s: %v; %s: %v)",
			base.Label, base.Kernels(), cur.Label, cur.Kernels())
	}
	return pairs, nil
}

// loadFile reads and parses one artifact file.
func loadFile(path string) (*diff.Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return diff.LoadArtifact(path, data)
}

// compilePair compiles the kernel source twice — under the baseline and
// current option tokens, journal armed — simulates both, and returns the
// single resulting pair.
func compilePair(ctx context.Context, srcPath, baseOpts, curOpts string, seed int64) ([]pair, error) {
	src, err := os.ReadFile(srcPath)
	if err != nil {
		return nil, err
	}
	base, err := compileSide(ctx, string(src), "base["+baseOpts+"]", baseOpts, seed)
	if err != nil {
		return nil, fmt.Errorf("baseline compile: %w", err)
	}
	cur, err := compileSide(ctx, string(src), "cur["+curOpts+"]", curOpts, seed)
	if err != nil {
		return nil, fmt.Errorf("current compile: %w", err)
	}
	return []pair{{base, cur}}, nil
}

// compileSide runs one journal-armed compile + simulation and folds the
// result into a diff.Input.
func compileSide(ctx context.Context, src, label, tokens string, seed int64) (diff.Input, error) {
	opts, err := parseOpts(tokens)
	if err != nil {
		return diff.Input{}, err
	}
	opts.Journal = egraph.NewJournal(0)
	res, err := diospyros.CompileSourceContext(ctx, src, opts)
	if err != nil {
		return diff.Input{}, err
	}
	in := diff.Input{Label: label, Kernel: res.Kernel.Name, Trace: res.Trace}
	if res.Program != nil {
		if _, sres, err := res.Run(randomInputs(res, seed), nil); err == nil {
			in.Profile = sres.Profile
			in.Cycles = sres.Cycles
		}
	}
	return in, nil
}

// parseOpts turns the comma-separated option tokens into compile Options.
func parseOpts(tokens string) (diospyros.Options, error) {
	var opts diospyros.Options
	for _, tok := range strings.Split(tokens, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, hasVal := strings.Cut(tok, "=")
		switch {
		case tok == "no-vector":
			opts.DisableVectorRules = true
		case tok == "ac":
			opts.EnableAC = true
		case tok == "backoff":
			opts.UseBackoff = true
		case key == "width" && hasVal:
			n, err := strconv.Atoi(val)
			if err != nil {
				return opts, fmt.Errorf("bad width %q", val)
			}
			opts.Width = n
		case key == "target" && hasVal:
			opts.Target = val
		case key == "timeout" && hasVal:
			d, err := time.ParseDuration(val)
			if err != nil {
				return opts, fmt.Errorf("bad timeout %q", val)
			}
			opts.Timeout = d
		case key == "node-limit" && hasVal:
			n, err := strconv.Atoi(val)
			if err != nil {
				return opts, fmt.Errorf("bad node-limit %q", val)
			}
			opts.NodeLimit = n
		case key == "match-workers" && hasVal:
			n, err := strconv.Atoi(val)
			if err != nil {
				return opts, fmt.Errorf("bad match-workers %q", val)
			}
			opts.MatchWorkers = n
		case strings.HasPrefix(key, "cost:") && hasVal:
			op := strings.TrimPrefix(key, "cost:")
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || op == "" {
				return opts, fmt.Errorf("bad cost override %q", tok)
			}
			if opts.OpCost == nil {
				opts.OpCost = map[string]float64{}
			}
			opts.OpCost[op] = v
		default:
			return opts, fmt.Errorf("unknown option token %q", tok)
		}
	}
	return opts, nil
}

// marshalDiffs renders one diff as an object, several as an array.
func marshalDiffs(diffs []*diff.Diff) ([]byte, error) {
	if len(diffs) == 1 {
		return diffs[0].JSON()
	}
	return json.MarshalIndent(diffs, "", "  ")
}

// randomInputs fills every kernel input with reproducible random tenths in
// [-10, 10) — the same harness as diospyros -run, so simulated cycles are
// comparable across the two sides.
func randomInputs(res *diospyros.Result, seed int64) map[string][]float64 {
	r := rand.New(rand.NewSource(seed))
	inputs := map[string][]float64{}
	for _, d := range res.Kernel.Inputs {
		s := make([]float64, d.Len())
		for i := range s {
			s[i] = float64(int(r.Float64()*200-100)) / 10
		}
		inputs[d.Name] = s
	}
	return inputs
}

func usage(msg string) {
	fmt.Fprintln(os.Stderr, "diosdiff:", msg)
	fmt.Fprintln(os.Stderr, "usage: diosdiff [flags] baseline.json current.json")
	fmt.Fprintln(os.Stderr, "       diosdiff [flags] -compile kernel.dios [-base-opts t,t] [-cur-opts t,t]")
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diosdiff:", err)
	os.Exit(1)
}
