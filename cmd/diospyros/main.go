// Command diospyros compiles a scalar kernel written in the imperative
// kernel language into vectorized DSP code:
//
//	diospyros [flags] kernel.dios
//
// By default the generated C-with-intrinsics is written to stdout. Flags
// expose the compiler's artifacts and the bundled FG3-lite simulator:
//
//	diospyros -dump-spec kernel.dios     # the lifted specification
//	diospyros -dump-egraph kernel.dios   # the saturated e-graph (dot)
//	diospyros -dump-vir  kernel.dios     # the optimized vector IR
//	diospyros -dump-asm  kernel.dios     # FG3-lite assembly
//	diospyros -run -seed 7 kernel.dios   # simulate on random inputs
//	diospyros -validate kernel.dios      # translation validation
//	diospyros -no-vector kernel.dios     # §5.6 scalar ablation
//	diospyros -trace kernel.dios         # per-stage pipeline telemetry
//	diospyros -json kernel.dios          # the trace as JSON (no C output)
//	diospyros -explain kernel.dios       # the rule chain justifying the output
//	diospyros -trace-out t.json …        # Chrome trace-event JSON (Perfetto)
//	diospyros -metrics-out m.prom …      # Prometheus text-format metrics
//	diospyros -report r.html …           # self-contained HTML flight report
//	diospyros -ac -backoff …             # AC rules under the backoff scheduler
//	diospyros -targets fg3lite-4,fg3lite-8,scalar kernel.dios
//	                                     # one search, one extraction per target,
//	                                     # with a per-target cost/cycle table
//
// The compile runs under a context cancelled by SIGINT/SIGTERM, so an
// interrupted equality saturation stops within one iteration.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	diospyros "diospyros"
	"diospyros/internal/buildinfo"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
	"diospyros/internal/rules"
	"diospyros/internal/telemetry"
)

func main() {
	var (
		out       = flag.String("o", "", "write generated C to this file (default stdout)")
		dumpSpec  = flag.Bool("dump-spec", false, "print the lifted specification and exit")
		dumpDot   = flag.Bool("dump-egraph", false, "print the saturated e-graph in Graphviz dot syntax and exit")
		dumpVIR   = flag.Bool("dump-vir", false, "print the optimized vector IR")
		dumpAsm   = flag.Bool("dump-asm", false, "print FG3-lite assembly")
		doRun     = flag.Bool("run", false, "simulate the kernel on random inputs")
		seed      = flag.Int64("seed", 1, "random seed for -run")
		validate  = flag.Bool("validate", false, "run translation validation")
		noVector  = flag.Bool("no-vector", false, "disable vector rewrite rules (scalar ablation)")
		enableAC  = flag.Bool("ac", false, "enable full associativity/commutativity rules")
		backoff   = flag.Bool("backoff", false, "schedule rules with the backoff policy (ban over-matching rules); useful with -ac")
		timeout   = flag.Duration("timeout", 0, "equality saturation timeout (default 180s)")
		nodeLimit = flag.Int("node-limit", 0, "e-graph node limit (default 10,000,000)")
		matchWork = flag.Int("match-workers", 0, "parallel e-matching workers (default: one per CPU; 1 forces the serial matcher; results are identical at any setting)")
		targets   = flag.String("targets", "", "comma-separated machine targets (e.g. fg3lite-4,fg3lite-8,scalar): one saturation search, one extraction per target; the first is primary")
		stats     = flag.Bool("stats", false, "print compilation statistics to stderr")
		trace     = flag.Bool("trace", false, "print the per-stage pipeline trace to stderr")
		logLevel  = flag.String("log-level", "warn", "structured log level: debug, info, warn, error (debug logs every pipeline stage)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
		jsonOut   = flag.Bool("json", false, "print the pipeline trace as JSON to stdout instead of C")
		explain   = flag.Bool("explain", false, "record rewrite provenance and print the rule chain justifying the output")
		traceOut  = flag.String("trace-out", "", "write the pipeline trace as Chrome trace-event JSON to this file")
		metricOut = flag.String("metrics-out", "", "write the pipeline trace in Prometheus text format to this file")
		reportOut = flag.String("report", "", "write a self-contained HTML flight report (search, extraction, sim cycles) to this file")
		memProf   = flag.String("mem-profile", "", "write a pprof heap profile captured at the e-graph's node-count peak to this file")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("diospyros"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: diospyros [flags] kernel.dios")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q", *logLevel))
	}
	if *stats && level > slog.LevelInfo {
		level = slog.LevelInfo // -stats reports through the structured logger
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logJSON)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The logger rides the context, so pipeline stages emit per-stage debug
	// lines tagged with the kernel file being compiled.
	ctx = telemetry.WithLogger(ctx, logger.With("kernel_file", flag.Arg(0)))

	if *dumpSpec {
		lifted, err := diospyros.Lift(string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Println(expr.Pretty(lifted.Spec))
		return
	}
	if *dumpDot {
		lifted, err := diospyros.Lift(string(src))
		if err != nil {
			fatal(err)
		}
		g := egraph.New()
		g.AddExpr(lifted.Spec)
		cfg := rules.Config{Width: 4, EnableAC: *enableAC, DisableVector: *noVector}
		egraph.RunContext(ctx, g, cfg.Rules(), egraph.Limits{
			MaxIterations: 30, MaxNodes: 100_000, Timeout: *timeout,
		})
		fmt.Print(g.ToDot())
		return
	}

	opts := diospyros.Options{
		Timeout:            *timeout,
		NodeLimit:          *nodeLimit,
		MatchWorkers:       *matchWork,
		DisableVectorRules: *noVector,
		EnableAC:           *enableAC,
		UseBackoff:         *backoff,
		Validate:           *validate,
		Explain:            *explain,
	}
	if *targets != "" {
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				opts.Targets = append(opts.Targets, t)
			}
		}
	}
	if *reportOut != "" {
		// The HTML report renders the flight-recorder sections, so a
		// report compile always runs with the journal on.
		opts.Journal = egraph.NewJournal(0)
	}
	var profiler *telemetry.MemProfiler
	if *memProf != "" {
		// The profiler polls live Progress and snapshots the heap profile
		// whenever the node count sets a new high-water mark, so the written
		// profile shows the allocation stacks behind the e-graph's peak.
		prog := &egraph.Progress{}
		opts.Progress = prog
		profiler = telemetry.StartMemProfiler(func() int { return prog.Snapshot().Nodes }, 0)
	}
	res, err := diospyros.CompileSourceContext(ctx, string(src), opts)
	if profiler != nil {
		snapshot, peak := profiler.Stop()
		if werr := os.WriteFile(*memProf, snapshot, 0o644); werr != nil {
			fatal(werr)
		}
		logger.Info("heap profile written", "file", *memProf, "peak_nodes", peak)
	}
	if err != nil {
		fatal(err)
	}

	if len(res.Targets) > 1 {
		// Multi-target compile: one saturation search, N extractions. The
		// summary table compares the machines; stdout still carries the
		// primary target's C.
		tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "target\twidth\tcost\tvir\tasm\tcycles")
		for _, tr := range res.Targets {
			asm := "-"
			if tr.Program != nil {
				asm = fmt.Sprintf("%d", len(tr.Program.Instrs))
			}
			cyc := "-"
			if tr.Cycles > 0 {
				cyc = fmt.Sprintf("%d", tr.Cycles)
			}
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%d\t%s\t%s\n",
				tr.Target, tr.Width, tr.Cost, len(tr.VIR.Instrs), asm, cyc)
		}
		tw.Flush()
	}
	if *trace {
		fmt.Fprint(os.Stderr, res.Trace.Format())
	}
	if *explain {
		if e := res.Trace.Explanation; e != nil {
			fmt.Fprint(os.Stderr, e.Format())
		}
	}
	if *traceOut != "" {
		raw, err := res.Trace.ChromeTrace(res.Kernel.Name)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
			fatal(err)
		}
	}
	if *metricOut != "" {
		if err := os.WriteFile(*metricOut, []byte(res.Trace.PrometheusText(res.Kernel.Name)), 0o644); err != nil {
			fatal(err)
		}
	}
	if *reportOut != "" {
		data := telemetry.ReportData{
			Title:    res.Kernel.Name,
			Subtitle: fmt.Sprintf("%s · cost %.2f", flag.Arg(0), res.Cost),
			Trace:    res.Trace,
		}
		// A simulator run supplies the cycle waterfall when the kernel
		// compiled to FG3-lite; a report for an IR-only width still renders
		// the search and extraction sections.
		if res.Program != nil {
			if _, sres, err := res.Run(randomInputs(res, *seed), nil); err == nil {
				data.Cycle = diospyros.ReportCycleProfile(sres.Profile)
			} else {
				logger.Warn("report: simulator run failed; omitting cycle waterfall", "err", err)
			}
		}
		f, err := os.Create(*reportOut)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.RenderReport(f, data); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *stats {
		logger.Info("compiled",
			"kernel", res.Kernel.Name,
			"duration", res.Compile.Round(time.Millisecond),
			"alloc_mb", fmt.Sprintf("%.1f", float64(res.AllocBytes)/1e6))
		logger.Info("saturation",
			"nodes", res.Saturation.Nodes, "classes", res.Saturation.Classes,
			"iterations", res.Saturation.Iterations, "stopped", string(res.Saturation.Reason))
		logger.Info("extracted", "cost", res.Cost, "vir_instrs", len(res.VIR.Instrs))
		if res.Validated {
			logger.Info("translation validation ok")
		}
	}

	switch {
	case *jsonOut:
		raw, err := res.Trace.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(raw))
		if *out != "" {
			if err := os.WriteFile(*out, []byte(res.C), 0o644); err != nil {
				fatal(err)
			}
		}
	case *dumpVIR:
		fmt.Print(res.VIR.String())
	case *dumpAsm:
		if res.Program == nil {
			fatal(fmt.Errorf("primary target has no assembly backend"))
		}
		fmt.Print(res.Program.Disassemble())
	case *doRun:
		inputs := randomInputs(res, *seed)
		outputs, sres, err := res.Run(inputs, nil)
		if err != nil {
			fatal(err)
		}
		var names []string
		for _, d := range res.Kernel.Inputs {
			names = append(names, d.Name)
		}
		for _, n := range names {
			fmt.Printf("input  %s = %v\n", n, inputs[n])
		}
		names = names[:0]
		for _, d := range res.Kernel.Outputs {
			names = append(names, d.Name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("output %s = %v\n", n, outputs[n])
		}
		fmt.Printf("simulated: %d cycles, %d instructions\n", sres.Cycles, sres.Instrs)
	default:
		if *out == "" {
			fmt.Print(res.C)
		} else if err := os.WriteFile(*out, []byte(res.C), 0o644); err != nil {
			fatal(err)
		}
	}
}

// randomInputs fills every kernel input with reproducible random tenths in
// [-10, 10), the -run / -report simulation harness.
func randomInputs(res *diospyros.Result, seed int64) map[string][]float64 {
	r := rand.New(rand.NewSource(seed))
	inputs := map[string][]float64{}
	for _, d := range res.Kernel.Inputs {
		s := make([]float64, d.Len())
		for i := range s {
			s[i] = float64(int(r.Float64()*200-100)) / 10
		}
		inputs[d.Name] = s
	}
	return inputs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diospyros:", err)
	os.Exit(1)
}
