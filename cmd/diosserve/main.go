// Command diosserve runs the Diospyros compiler as a long-running HTTP
// service with live observability:
//
//	diosserve -addr :8175
//
//	POST /compile        compile a kernel (raw source, or JSON with options)
//	GET  /metrics        live Prometheus metrics across all requests
//	GET  /traces         recent compiles as a Chrome trace file, one lane per request
//	GET  /healthz        liveness probe
//	GET  /readyz         readiness probe (503 while draining)
//	GET  /debug/pprof/   live CPU/heap/goroutine profiles
//
//	curl -sS -X POST --data-binary @testdata/dotprod8.dios localhost:8175/compile
//	curl -sS localhost:8175/metrics | grep diospyros_serve
//
// A POST /compile with "Accept: text/event-stream" streams the search
// flight recorder live as Server-Sent Events — one event per rewrite-rule
// firing, Backoff ban, iteration summary, and best-cost sample — ending
// with a "result" event carrying the usual JSON response:
//
//	curl -sSN -H 'Accept: text/event-stream' \
//	     --data-binary @testdata/conv3x5.dios localhost:8175/compile
//
// Repeat compiles of the same kernel with the same options are served
// from a content-addressed cache (the X-Dios-Cache response header says
// hit, miss, or coalesced; -cache-bytes budgets it), and concurrent
// identical requests are coalesced into a single compile.
//
// Compiles run on a bounded worker pool with an admission queue; a
// per-request saturation watchdog aborts compiles whose e-graph, process
// heap, or wall clock blows the -watchdog-nodes / -watchdog-heap /
// -watchdog-wall budgets. Every request
// gets an ID that tags its structured log lines (stage-level at -log-level
// debug) and its response. SIGINT/SIGTERM drains: /readyz flips to 503,
// in-flight compiles get -drain-grace to finish, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	diospyros "diospyros"
	"diospyros/internal/buildinfo"
	"diospyros/internal/serve"
	"diospyros/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8175", "listen address")
		workers    = flag.Int("workers", 0, "max concurrent compiles (default GOMAXPROCS)")
		queueDepth = flag.Int("queue", 0, "max requests waiting for a worker (default 64)")
		reqTimeout = flag.Duration("request-timeout", 0, "per-request compile deadline (default 120s)")
		wdNodes    = flag.Int("watchdog-nodes", 2_000_000, "abort compiles whose e-graph exceeds this many nodes (0 disables)")
		wdWall     = flag.Duration("watchdog-wall", 0, "abort compiles running longer than this (0 disables)")
		wdHeap     = flag.Int64("watchdog-heap", 0, "abort compiles once the process live heap exceeds this many bytes (0 disables)")
		satTimeout = flag.Duration("timeout", 0, "default equality-saturation timeout (default 180s)")
		matchWork  = flag.Int("match-workers", 0, "parallel e-matching workers per compile (default: one per CPU; 1 forces serial; output is identical at any setting)")
		cacheBytes = flag.Int64("cache-bytes", 0, "content-addressed compile cache budget in bytes (default 64 MiB, negative disables)")
		enableAC   = flag.Bool("ac", false, "enable full associativity/commutativity rules")
		backoff    = flag.Bool("backoff", false, "schedule rules with the backoff policy (ban over-matching rules); useful with -ac")
		traceLog   = flag.Int("trace-log", 0, "completed request traces kept for GET /traces (default 64, negative disables)")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logJSON    = flag.Bool("log-json", false, "log JSON lines instead of text")
		drainGrace = flag.Duration("drain-grace", 10*time.Second, "shutdown grace period for in-flight compiles")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("diosserve"))
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "diosserve: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	log := telemetry.NewLogger(os.Stderr, level, *logJSON)

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
		WatchdogNodes:  *wdNodes,
		WatchdogWall:   *wdWall,
		WatchdogHeap:   *wdHeap,
		TraceLog:       *traceLog,
		CacheBytes:     *cacheBytes,
		Options: diospyros.Options{
			Timeout:      *satTimeout,
			EnableAC:     *enableAC,
			UseBackoff:   *backoff,
			MatchWorkers: *matchWork,
		},
		Logger: log,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("diosserve listening", "addr", *addr)

	select {
	case err := <-errc:
		log.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("draining", "grace", *drainGrace)
	srv.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("shutdown incomplete", "err", err)
		_ = httpSrv.Close()
	}
	log.Info("diosserve stopped")
}
