// Command diosload soaks one or more diosserve replicas with sustained
// concurrent compile traffic and reports the serving SLO picture: latency
// percentiles (p50/p90/p99/p99.9), throughput, shed/error rates, cache hit
// ratio, the server-reported per-phase breakdown, and per-kernel stats.
//
//	diosload -url http://localhost:8175 -duration 20s -concurrency 8
//
// Driving modes: closed loop by default (-concurrency workers, each with
// one request in flight), open loop with -rate N (N arrivals/second
// regardless of completions). The kernel mix cycles through -kernels (a
// subset of the built-in five: matmul2x2, matmul2x3, dot8, fir8, qr3), and
// -cache-bust F salts that fraction of requests with a unique comment so
// they miss the server's content-addressed compile cache.
//
// Artifacts: -out writes the run as SoakResult JSON (the committed
// BENCH_SERVE_PR8.json baseline format), -report writes a self-contained
// HTML soak report (latency-over-time lanes, shed timeline, phase and
// per-kernel tables). -compare BASELINE.json gates the run against a
// committed baseline the way diosbench -compare gates cycles: exit 1 when
// a latency percentile or throughput regresses beyond -latency-tolerance
// or the error/shed rates blow -error-budget / -shed-budget.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"diospyros/internal/buildinfo"
	"diospyros/internal/loadgen"
	"diospyros/internal/telemetry"
)

func main() {
	var (
		urls        = flag.String("url", "http://localhost:8175", "comma-separated replica base URLs, round-robined")
		kernels     = flag.String("kernels", "", "comma-separated kernel mix from the built-in set (default: all five)")
		concurrency = flag.Int("concurrency", 4, "closed-loop workers, each keeping one request in flight")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
		duration    = flag.Duration("duration", 20*time.Second, "how long to drive load")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		cacheBust   = flag.Float64("cache-bust", 0, "fraction of requests (0..1) salted to miss the server's compile cache")
		salt        = flag.String("salt", "", "cache-busting salt namespace (default: derived from the start time)")
		targetsFlag = flag.String("targets", "", "comma-separated machine targets for each compile (JSON requests)")
		window      = flag.Duration("window", time.Second, "time-series bucket width")
		out         = flag.String("out", "", "write the run as SoakResult JSON to this file")
		reportOut   = flag.String("report", "", "write a self-contained HTML soak report to this file")
		compare     = flag.String("compare", "", "gate the run against this SoakResult JSON baseline; exit 1 on SLO violations")
		latTol      = flag.Float64("latency-tolerance", loadgen.DefaultSLO.LatencyTolerance, "relative latency/throughput regression tolerance for -compare (0.5 = +50% fails)")
		errBudget   = flag.Float64("error-budget", loadgen.DefaultSLO.ErrorBudget, "absolute error-rate budget for -compare (0.01 = 1% of requests)")
		shedBudget  = flag.Float64("shed-budget", loadgen.DefaultSLO.ShedBudget, "absolute shed-rate budget for -compare")
		latFloor    = flag.Float64("latency-floor", loadgen.DefaultSLO.LatencyFloorMS, "latency floor in ms for -compare: percentiles below it are all fast enough (0 disables)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logJSON     = flag.Bool("log-json", false, "log JSON lines instead of text")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("diosload"))
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "diosload: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	log := telemetry.NewLogger(os.Stderr, level, *logJSON)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "diosload:", err)
		os.Exit(1)
	}

	mix := loadgen.BuiltinMix()
	if *kernels != "" {
		var ok bool
		mix, ok = loadgen.MixByNames(splitList(*kernels))
		if !ok {
			fail(fmt.Errorf("unknown kernel in -kernels %q (built-in: matmul2x2, matmul2x3, dot8, fir8, qr3)", *kernels))
		}
	}
	if *salt == "" {
		*salt = time.Now().UTC().Format("20060102T150405")
	}

	cfg := loadgen.Config{
		URLs:        splitList(*urls),
		Kernels:     mix,
		Concurrency: *concurrency,
		Rate:        *rate,
		Duration:    *duration,
		Timeout:     *timeout,
		CacheBust:   *cacheBust,
		Salt:        *salt,
		Targets:     splitList(*targetsFlag),
		Window:      *window,
		Logger:      log,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("soak starting", "urls", *urls, "duration", *duration,
		"concurrency", *concurrency, "rate", *rate, "kernels", len(mix))
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fail(err)
	}
	res.Build = buildinfo.Summary("diosload")

	fmt.Print(loadgen.FormatSummary(res))

	if *out != "" {
		if err := loadgen.WriteJSON(*out, res); err != nil {
			fail(err)
		}
		log.Info("soak result written", "file", *out)
	}

	gateText := ""
	gateFailed := false
	if *compare != "" {
		baseline, err := os.ReadFile(*compare)
		if err != nil {
			fail(err)
		}
		slo := loadgen.SLO{
			LatencyTolerance: *latTol,
			ErrorBudget:      *errBudget,
			ShedBudget:       *shedBudget,
			LatencyFloorMS:   *latFloor,
		}
		rows, err := loadgen.Compare(baseline, res, slo)
		if err != nil {
			fail(err)
		}
		gateText = loadgen.FormatGate(rows, slo)
		fmt.Print(gateText)
		gateFailed = loadgen.CountRegressions(rows) > 0
	}

	if *reportOut != "" {
		page, err := loadgen.Report(res, gateText)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*reportOut, page, 0o644); err != nil {
			fail(err)
		}
		log.Info("soak report written", "file", *reportOut)
	}

	if gateFailed {
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
