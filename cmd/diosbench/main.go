// Command diosbench regenerates every table and figure of the paper's
// evaluation (§5) against the FG3-lite simulated DSP:
//
//	diosbench -all          # everything below, in order
//	diosbench -table1       # Table 1: compile time and memory
//	diosbench -figure5      # Figure 5: kernel speedups vs. baselines
//	diosbench -figure6      # Figure 6: saturation-budget ablation
//	diosbench -motivating   # §2 motivating-example numbers
//	diosbench -expert       # §5.4 expert-kernel comparison
//	diosbench -ablation     # §5.6 vectorization ablation
//	diosbench -cost-ablation # extraction cost-model ablation
//	diosbench -theia        # §5.7 Theia case study
//	diosbench -validate     # translation validation of all 21 kernels
//	diosbench -match-sweep  # parallel e-matching saturate-stage speedup
//
// Use -only <substrings> (comma-separated) to restrict kernel-suite
// experiments, and -v for per-kernel progress (structured log lines;
// -log-level debug additionally traces every pipeline stage, -log-json
// switches the lines to JSON). -trace adds the per-kernel
// pipeline stage tables to the Table 1 output; -json emits Table 1 rows
// (with traces) as JSON; -profile prints each kernel's simulated cycle
// breakdown. -trace-out/-metrics-out export all compilation traces as
// Chrome trace-event JSON / Prometheus text, and -bench-json writes
// per-kernel cycles+profiles+peak-e-graph-bytes for regression tracking
// (the CI smoke job's artifacts). -compare BENCH_PR7.json gates the run
// against a committed baseline, exiting 1 when any kernel's cycles regress
// beyond -tolerance or its peak e-graph bytes beyond -mem-tolerance;
// -forensics DIR additionally recompiles each regressed kernel with the
// search journal armed and writes baseline-vs-current diff artifacts
// (<kernel>.diff.json/.html, see cmd/diosdiff) for the gate-failure autopsy.
// -mem-profile FILE captures a pprof heap profile at the suite's e-graph
// node-count peak. Experiments run under a context cancelled by
// SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	diospyros "diospyros"
	"diospyros/internal/bench"
	"diospyros/internal/buildinfo"
	"diospyros/internal/egraph"
	"diospyros/internal/telemetry"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		table1     = flag.Bool("table1", false, "Table 1: compile time and memory")
		figure5    = flag.Bool("figure5", false, "Figure 5: kernel speedups")
		figure6    = flag.Bool("figure6", false, "Figure 6: timeout ablation")
		motivating = flag.Bool("motivating", false, "§2 motivating example")
		expertCmp  = flag.Bool("expert", false, "§5.4 expert comparison")
		ablation   = flag.Bool("ablation", false, "§5.6 vectorization ablation")
		costAbl    = flag.Bool("cost-ablation", false, "cost-model design-choice ablation")
		theiaCase  = flag.Bool("theia", false, "§5.7 Theia case study")
		validate   = flag.Bool("validate", false, "translation validation of the suite")
		targets    = flag.String("targets", "", "comma-separated machine targets (e.g. fg3lite-4,fg3lite-8,scalar): compile the suite once per kernel, extract per target, and print a per-kernel cycle table")
		only       = flag.String("only", "", "restrict suite experiments to kernels whose ID contains any comma-separated substring")
		verbose    = flag.Bool("v", false, "per-kernel progress (structured log lines on stderr)")
		logLevel   = flag.String("log-level", "warn", "structured log level: debug, info, warn, error (debug logs every pipeline stage)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
		timeout    = flag.Duration("timeout", 0, "equality saturation timeout (default: paper's 180s)")
		matchWork  = flag.Int("match-workers", 0, "parallel e-matching workers for every experiment (default: one per CPU; 1 forces serial)")
		matchSweep = flag.Bool("match-sweep", false, "sweep -match-workers over {1,2,4,GOMAXPROCS} per kernel and report parallel saturate-stage speedup")
		sweepReps  = flag.Int("sweep-repeat", 3, "compiles per (kernel, workers) cell for -match-sweep; fastest run wins")
		trace      = flag.Bool("trace", false, "print per-kernel pipeline stage tables with Table 1")
		jsonOut    = flag.Bool("json", false, "emit Table 1 rows (with traces) as JSON")
		profile    = flag.Bool("profile", false, "print per-kernel simulated cycle profiles (hotspots, slots, stalls)")
		traceOut   = flag.String("trace-out", "", "write all kernels' compilation traces as Chrome trace-event JSON to this file")
		metricOut  = flag.String("metrics-out", "", "write all kernels' compilation metrics in Prometheus text format to this file")
		benchJSON  = flag.String("bench-json", "", "write per-kernel simulated cycles and profiles as JSON to this file")
		compare    = flag.String("compare", "", "compare per-kernel cycles and peak e-graph bytes against this -bench-json baseline; exit 1 on regressions beyond -tolerance / -mem-tolerance")
		tolerance  = flag.Float64("tolerance", 0.15, "relative cycle regression tolerance for -compare (0.15 = +15% fails)")
		memTol     = flag.Float64("mem-tolerance", 0.25, "relative peak-e-graph-bytes regression tolerance for -compare (0.25 = +25% fails)")
		forensics  = flag.String("forensics", "", "on -compare regressions, write per-kernel diff artifacts (<kernel>.diff.json/.html) to this directory: each regressed kernel is recompiled with the search journal armed and diffed against its baseline row")
		memProfile = flag.String("mem-profile", "", "write a pprof heap profile captured at the suite's e-graph node-count peak to this file")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("diosbench"))
		return
	}

	exporting := *traceOut != "" || *metricOut != "" || *benchJSON != "" || *profile || *compare != "" || *memProfile != ""
	if !(*all || *table1 || *figure5 || *figure6 || *motivating || *expertCmp ||
		*ablation || *costAbl || *theiaCase || *validate || *matchSweep ||
		*targets != "" || exporting) {
		flag.Usage()
		os.Exit(2)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "diosbench: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	if *verbose && level > slog.LevelInfo {
		level = slog.LevelInfo // -v reports progress through the structured logger
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logJSON)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Pipeline stages read the logger off the context, so -log-level debug
	// traces every stage of every kernel compile.
	ctx = telemetry.WithLogger(ctx, logger)

	opts := diospyros.Options{Timeout: *timeout, MatchWorkers: *matchWork}
	progress := func(string) {}
	if *verbose {
		progress = func(s string) { logger.Info("progress", "detail", s) }
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "diosbench:", err)
		os.Exit(1)
	}

	var f5rows []bench.F5Row
	needF5 := *all || *figure5 || *motivating
	if needF5 {
		fmt.Println("== Figure 5: compiling and simulating the 21-kernel suite ==")
		rows, err := bench.Figure5(bench.F5Options{Opts: opts, Only: *only, Progress: progress, Context: ctx})
		if err != nil {
			fail(err)
		}
		f5rows = rows
	}

	if *all || *table1 || exporting {
		t1opts := opts
		var profiler *telemetry.MemProfiler
		if *memProfile != "" {
			// One Progress feeds every kernel's saturation run in turn, so a
			// single profiler captures the heap at the suite-wide node peak.
			prog := &egraph.Progress{}
			t1opts.Progress = prog
			profiler = telemetry.StartMemProfiler(func() int { return prog.Snapshot().Nodes }, 0)
		}
		rows, err := bench.Table1(bench.T1Options{Opts: t1opts, Only: *only, Progress: progress, Context: ctx})
		if profiler != nil {
			snapshot, peak := profiler.Stop()
			if werr := os.WriteFile(*memProfile, snapshot, 0o644); werr != nil {
				fail(werr)
			}
			fmt.Fprintf(os.Stderr, "diosbench: heap profile at %d-node peak written to %s\n", peak, *memProfile)
		}
		if err != nil {
			fail(err)
		}
		switch {
		case *jsonOut:
			raw, err := bench.Table1JSON(rows)
			if err != nil {
				fail(err)
			}
			fmt.Println(string(raw))
		case *all || *table1:
			fmt.Println("== Table 1 ==")
			fmt.Println(bench.FormatTable1(rows))
			if *trace {
				fmt.Print(bench.FormatTable1Traces(rows))
			}
		}
		if *profile {
			fmt.Print(bench.FormatCycleProfiles(rows))
		}
		if *traceOut != "" {
			raw, err := telemetry.ChromeTraces(bench.NamedTraces(rows))
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
				fail(err)
			}
		}
		if *metricOut != "" {
			text := telemetry.PrometheusTexts(bench.NamedTraces(rows))
			if err := os.WriteFile(*metricOut, []byte(text), 0o644); err != nil {
				fail(err)
			}
		}
		if *benchJSON != "" {
			raw, err := bench.BenchJSON(rows)
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*benchJSON, raw, 0o644); err != nil {
				fail(err)
			}
		}
		if *compare != "" {
			baseline, err := os.ReadFile(*compare)
			if err != nil {
				fail(err)
			}
			regressions := 0
			var verdicts [][]bench.CompareRow
			for _, gate := range []struct {
				metric bench.CompareMetric
				tol    float64
			}{
				{bench.MetricCycles, *tolerance},
				{bench.MetricPeakBytes, *memTol},
			} {
				verdict, err := bench.CompareBenchMetric(baseline, rows, gate.tol, gate.metric)
				if err != nil {
					fail(err)
				}
				fmt.Print(bench.FormatCompareMetric(verdict, gate.tol, gate.metric.Name))
				verdicts = append(verdicts, verdict)
				regressions += bench.CountRegressions(verdict)
			}
			if *forensics != "" {
				// Gate-failure autopsy: recompile each regressed kernel with
				// the journal armed and write baseline-vs-current diff
				// artifacts (CI uploads the directory on failure).
				ids := bench.RegressedIDs(verdicts...)
				written, err := bench.Forensics(bench.FOptions{
					Dir: *forensics, Opts: opts, BaselineLabel: *compare,
					Progress: func(s string) { fmt.Fprintln(os.Stderr, "diosbench:", s) },
					Context:  ctx,
				}, baseline, ids)
				if err != nil {
					fail(err)
				}
				if len(written) > 0 {
					fmt.Fprintf(os.Stderr, "diosbench: %d forensics artifacts in %s\n", len(written), *forensics)
				}
			}
			if regressions > 0 {
				os.Exit(1)
			}
		}
	}
	if *all || *figure5 {
		fmt.Println(bench.FormatFigure5(f5rows))
	}
	if *all || *motivating {
		fmt.Println(bench.FormatMotivating(f5rows))
	}
	if *all || *figure6 {
		fmt.Println("== Figure 6 ==")
		rows, err := bench.Figure6Timeouts(nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFigure6(rows))
	}
	if *all || *expertCmp {
		res, err := bench.ExpertContext(ctx, opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatExpert(res))
	}
	if *all || *ablation {
		fmt.Println("== §5.6 ablation: compiling the suite twice ==")
		rows, sum, err := bench.Ablation(bench.F5Options{Opts: opts, Only: *only, Progress: progress, Context: ctx})
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatAblation(rows, sum))
	}
	if *all || *costAbl {
		fmt.Println("== cost-model ablation: compiling the suite twice ==")
		rows, err := bench.CostModelAblation(bench.F5Options{Opts: opts, Only: *only, Progress: progress, Context: ctx})
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatCostAblation(rows))
	}
	if *matchSweep {
		fmt.Println("== match-worker sweep: parallel e-matching speedup ==")
		rows, err := bench.MatchSweep(bench.MSOptions{
			Opts: opts, Only: *only, Repeat: *sweepReps, Progress: progress, Context: ctx,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatMatchSweep(rows))
	}
	if *all || *theiaCase {
		res, err := bench.Theia()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTheia(res))
	}
	if *targets != "" {
		var names []string
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				names = append(names, t)
			}
		}
		fmt.Printf("== per-target cycles: one search, %d extractions per kernel ==\n", len(names))
		rows, err := bench.TargetTable(bench.TTOptions{
			Opts: opts, Targets: names, Only: *only, Progress: progress, Context: ctx,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTargetTable(rows))
	}
	if *all || *validate {
		fmt.Println("== translation validation (§3.4) ==")
		start := time.Now()
		rows, err := bench.Table1(bench.T1Options{Opts: opts, Only: *only, Validate: true, Progress: progress, Context: ctx})
		if err != nil {
			fail(err)
		}
		ok := 0
		for _, r := range rows {
			if r.Validated {
				ok++
			}
		}
		fmt.Printf("validated %d/%d kernels in %v\n\n", ok, len(rows), time.Since(start).Round(time.Millisecond))
	}
}
