// Package diospyros is a search-based vectorizing compiler for small,
// fixed-size linear-algebra kernels on DSPs — a from-scratch Go
// reproduction of "Vectorization for Digital Signal Processors via Equality
// Saturation" (VanHattum et al., ASPLOS 2021).
//
// A kernel is written either in the imperative text language (package
// internal/frontend; see CompileSource) or against the embedded builder API
// (package internal/kernel). The compiler:
//
//  1. lifts the kernel to a mathematical vector DSL by symbolic evaluation;
//  2. searches for vectorizations by equality saturation over an e-graph,
//     using rewrite rules for chunking, lane-wise vectorization with zero
//     padding, and fused multiply–accumulate;
//  3. extracts the cheapest program under an abstract data-movement cost
//     model;
//  4. lowers it through a vector IR (with local value numbering and dead
//     code elimination) to C-with-intrinsics text and to FG3-lite assembly
//     that runs on the bundled cycle-level DSP simulator;
//  5. optionally validates the optimized program against the specification
//     with an exact equivalence checker over real arithmetic.
package diospyros

import (
	"context"
	"errors"
	"fmt"
	"time"

	"diospyros/internal/cost"
	"diospyros/internal/egraph"
	"diospyros/internal/expr"
	"diospyros/internal/frontend"
	"diospyros/internal/isa"
	"diospyros/internal/kernel"
	"diospyros/internal/sim"
	"diospyros/internal/telemetry"
	"diospyros/internal/vir"
)

// Options configures a compilation. The zero value gives the defaults used
// throughout the evaluation: width 4, a 3-minute saturation timeout and a
// 10M-node limit (the paper's §5.2 settings), vector rules enabled, full
// associativity/commutativity disabled.
type Options struct {
	// Width is the legacy way to pick a vector width. 0 means the default
	// target's width (4). Nonzero widths resolve to the matching registered
	// target ("fg3lite-<w>", or "scalar" for width 1). Ignored when Target
	// or Targets is set.
	Width int
	// Target names a single machine target from the isa registry
	// ("fg3lite-4", "fg3lite-8", "scalar", or any width via "fg3lite-<w>").
	// Empty means the Width-derived default. Ignored when Targets is set.
	Target string
	// Targets requests multi-target compilation: one equality-saturation
	// search whose e-graph holds decompositions for every requested vector
	// width simultaneously, then one extraction per target under that
	// target's cost model. Result.Targets carries the per-target programs
	// (and simulated cycle counts when more than one target is requested).
	// The first entry is the primary target that fills Result.Program/C.
	Targets []string
	// Timeout bounds equality saturation wall-clock time. 0 means 180 s.
	// Negative means no timeout.
	Timeout time.Duration
	// NodeLimit bounds the e-graph size. 0 means 10,000,000.
	NodeLimit int
	// MaxIterations bounds saturation iterations. 0 means 64.
	MaxIterations int
	// DisableVectorRules removes all vector-introducing rewrites,
	// producing scalar (but CSE-optimized) code — the §5.6 ablation.
	DisableVectorRules bool
	// EnableAC turns on full associativity/commutativity rules (§3.3).
	EnableAC bool
	// UseBackoff schedules rules with egg's backoff policy: rules whose
	// match count explodes are temporarily banned. Useful with EnableAC.
	UseBackoff bool
	// Validate runs translation validation on the extracted program.
	Validate bool
	// Explain enables rewrite-provenance recording during saturation and
	// attaches the extracted program's rule-chain report to the trace
	// (Result.Trace.Explanation, the -explain CLI flag). Costs one map
	// entry per rule-created e-node; off by default.
	Explain bool
	// CostModel overrides the extraction cost model.
	CostModel cost.Model
	// Progress, when non-nil, receives live iteration/node/class counts
	// while equality saturation runs, readable from other goroutines.
	// Watchdogs (e.g. the serve layer's saturation watchdog) poll it and
	// abort the compile by cancelling the context with a
	// *telemetry.AbortError cause; the abort reason then lands in the
	// trace's StopReason as "aborted:<reason>".
	Progress *egraph.Progress
	// Journal, when non-nil, turns on the search flight recorder: the
	// saturation run records per-iteration per-rule attribution, Backoff
	// ban/unban events, and a best-cost trajectory into it (readable live
	// from other goroutines — diosserve's SSE stream), extraction records
	// its decision trace, and the completed trace carries both as
	// Result.Trace.Search / Result.Trace.Extraction (the -report HTML).
	// Create with egraph.NewJournal; nil keeps the recorder fully off.
	Journal *egraph.Journal

	// MatchWorkers bounds the worker pool for equality saturation's
	// read-only match phase. 0 means one worker per CPU
	// (egraph.DefaultMatchWorkers); 1 forces the serial matcher. The
	// setting trades wall-clock time only: compiled output, extraction
	// costs, and search telemetry counts are bit-for-bit identical at
	// every worker count (DESIGN.md §9).
	MatchWorkers int
	// ExtraRules appends user-defined syntactic rewrite rules to the
	// search, the paper's §6 extension mechanism. For example, a DSP with
	// a fast reciprocal is taught with
	//
	//	{Name: "div-to-recip", LHS: "(/ ?x ?y)", RHS: "(* ?x (func recip ?y))"}
	//
	// the rewrite engine vectorizes `recip` like any lane-wise operation,
	// and OpCost makes the new instruction attractive to extraction.
	ExtraRules []RewriteRule
	// OpCost overrides the cost of individual operators during extraction,
	// keyed by DSL head symbol ("VecDiv", "/", "sqrt", ...). User-defined
	// functions are priced per name with "func:NAME" and "VecFunc:NAME".
	OpCost map[string]float64
}

// RewriteRule is a user-supplied syntactic rewrite: two patterns in the
// vector DSL's s-expression syntax with ?variables, applied left to right
// during equality saturation (soundness is the author's responsibility, as
// with the paper's user-extensible rules).
type RewriteRule struct {
	Name     string
	LHS, RHS string
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = isa.Width
	}
	if o.Timeout == 0 {
		o.Timeout = 180 * time.Second
	}
	if o.Timeout < 0 {
		o.Timeout = 0
	}
	if o.NodeLimit == 0 {
		o.NodeLimit = 10_000_000
	}
	return o
}

// TargetResult is one machine target's slice of a compilation: the program
// extracted from the shared saturated e-graph under that target's cost
// model, lowered and code-generated for that target's width.
type TargetResult struct {
	Target    string       // registry name (isa.Target.Name)
	Width     int          // vector lanes (1 for scalar)
	Optimized *expr.Expr   // extracted DSL program for this target
	VIR       *vir.Program // optimized low-level IR at this target's width
	Program   *isa.Program // assembly (nil when the target has no backend)
	C         string       // C-with-intrinsics text
	Cost      float64      // abstract extraction cost under this target's model
	Cycles    int64        // simulated cycles on deterministic inputs (0 if not simulated)
	Validated bool         // set when Options.Validate passed for this target
}

// Result is a compiled kernel and its artifacts. The top-level Optimized /
// VIR / Program / C fields describe the primary (first requested) target;
// Targets holds every requested target, in request order.
type Result struct {
	Kernel    *kernel.Lifted // the lifted specification
	Optimized *expr.Expr     // extracted DSL program (primary target)
	VIR       *vir.Program   // optimized low-level IR (primary target)
	Program   *isa.Program   // assembly (nil when the primary target has no backend)
	C         string         // C-with-intrinsics text (primary target)
	Targets   []TargetResult // per-target artifacts, request order

	Saturation egraph.Report    // equality-saturation statistics (Table 1)
	Trace      *telemetry.Trace // per-stage spans and per-iteration gauges
	Cost       float64          // abstract cost of the extracted program
	Compile    time.Duration    // end-to-end compile time (Table 1)
	AllocBytes uint64           // heap allocated during compilation (Table 1 memory proxy)
	Validated  bool             // set when Options.Validate passed
}

// Lift lifts a kernel written in the imperative text language.
func Lift(src string) (*kernel.Lifted, error) {
	k, err := frontend.Parse(src)
	if err != nil {
		return nil, err
	}
	return frontend.Lift(k)
}

// CompileSource compiles a kernel written in the imperative text language.
func CompileSource(src string, opts Options) (*Result, error) {
	return CompileSourceContext(context.Background(), src, opts)
}

// CompileSourceContext is CompileSource under a caller context; see
// CompileContext. The lift stage appears as an extra span in the trace.
func CompileSourceContext(ctx context.Context, src string, opts Options) (*Result, error) {
	return compile(ctx, &compileState{opts: opts.withDefaults(), src: src})
}

// Compile runs the full Diospyros pipeline on a lifted kernel.
func Compile(l *kernel.Lifted, opts Options) (*Result, error) {
	return CompileContext(context.Background(), l, opts)
}

// CompileContext runs the full Diospyros pipeline on a lifted kernel under
// a caller-supplied context. Cancelling the context aborts the compile at
// the next stage boundary — and, during equality saturation, within one
// iteration — returning an error wrapping the context's cancellation cause
// (context.Cause), alongside a partial Result whose Trace records how far
// the compile got. Options.Timeout still bounds only the saturation stage
// (internally a context deadline); when it expires the partially saturated
// e-graph is extracted as before, so budget-limited compiles (Figure 6)
// keep producing code.
func CompileContext(ctx context.Context, l *kernel.Lifted, opts Options) (*Result, error) {
	return compile(ctx, &compileState{opts: opts.withDefaults(), lifted: l})
}

// compile drives the staged pipeline and assembles the Result with its
// telemetry trace. On failure the Result is partial but still carries the
// trace (and any saturation gauges recorded before the failing stage), so
// callers — the serve layer in particular — can report and aggregate
// telemetry for failed and aborted compiles too.
func compile(ctx context.Context, st *compileState) (*Result, error) {
	targets, err := resolveTargets(st.opts)
	if err != nil {
		return nil, fmt.Errorf("diospyros: %w", err)
	}
	st.targets = targets
	rec := telemetry.NewRecorder()
	sampler := telemetry.StartHeapSampler(0)
	runErr := compilePipeline().Run(ctx, st, rec)
	heapPeak, heapSamples, gcCycles, gcPause := sampler.Stop()
	rec.SetIterations(st.report.Iters)
	rec.SetStopReason(string(st.report.Reason))
	if st.report.PeakFootprint.Total > 0 {
		// The memory record attaches before the error branch so aborted and
		// failed compiles still report how big the e-graph got.
		mt := memoryTraceFromReport(st.report)
		mt.HeapPeakBytes = heapPeak
		mt.HeapSamples = heapSamples
		mt.GCCycles = gcCycles
		mt.GCPauseTotal = gcPause
		rec.SetMemory(mt)
	}
	if st.opts.Journal != nil {
		// The search flight record attaches even to failed and aborted
		// compiles — explaining what the watchdog killed is its job.
		rec.SetSearch(searchTraceFromJournal(st.opts.Journal))
		if st.extractor != nil {
			rec.SetExtraction(extractionTrace(st.extractor, st.root))
		}
	}
	if st.report.Reason != "" {
		rec.Count("saturate.applied", int64(st.report.Applied))
		rec.Count("saturate.nodes", int64(st.report.Nodes))
		rec.Count("saturate.classes", int64(st.report.Classes))
	}
	if st.ir != nil {
		rec.Count("vir.instrs", int64(len(st.ir.Instrs)))
	}
	if runErr != nil {
		// A watchdog abort arrives as the context-cancellation cause; name
		// it in the trace so aborts are distinguishable from plain
		// cancellations both here and in aggregated metrics.
		var abort *telemetry.AbortError
		if errors.As(runErr, &abort) {
			rec.SetStopReason("aborted:" + abort.Reason)
		}
		trace := rec.Finish()
		return &Result{
			Kernel:     st.lifted,
			Saturation: st.report,
			Trace:      trace,
			Compile:    trace.Duration,
			AllocBytes: trace.AllocBytes,
		}, fmt.Errorf("diospyros: %w", runErr)
	}
	if st.opts.Explain {
		rec.SetExplanation(buildExplanation(st.g, st.extractor, st.root, st.ir))
		pn, pu := st.g.ProvenanceStats()
		rec.Count("provenance.nodes", int64(pn))
		rec.Count("provenance.unions", int64(pu))
	}
	trace := rec.Finish()

	return &Result{
		Kernel:     st.lifted,
		Optimized:  st.optimized,
		VIR:        st.ir,
		Program:    st.program,
		C:          st.cText,
		Targets:    st.perTarget,
		Saturation: st.report,
		Trace:      trace,
		Cost:       st.extractor.Cost(st.root),
		Compile:    trace.Duration,
		AllocBytes: trace.AllocBytes,
		Validated:  st.validated,
	}, nil
}

// resolveTargets materializes the requested target list from the options,
// in request order, deduplicated by name. Precedence: Targets, then Target,
// then the legacy Width (width 1 meaning the scalar target).
func resolveTargets(opts Options) ([]*isa.Target, error) {
	names := opts.Targets
	if len(names) == 0 && opts.Target != "" {
		names = []string{opts.Target}
	}
	if len(names) == 0 {
		switch {
		case opts.Width == isa.Width:
			return []*isa.Target{isa.Default()}, nil
		case opts.Width == 1:
			names = []string{"scalar"}
		default:
			names = []string{fmt.Sprintf("fg3lite-%d", opts.Width)}
		}
	}
	seen := map[string]bool{}
	out := make([]*isa.Target, 0, len(names))
	for _, name := range names {
		t, err := isa.LookupTarget(name)
		if err != nil {
			return nil, err
		}
		if seen[t.Name] {
			continue
		}
		seen[t.Name] = true
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, errors.New("no targets requested")
	}
	return out, nil
}

// ErrNoBackend reports that a compilation produced no runnable assembly for
// the requested target (a target registered with HasAssembly false). Match
// it with errors.Is; the concrete *NoBackendError names the target.
var ErrNoBackend = errors.New("diospyros: no assembly backend")

// NoBackendError is the concrete error behind ErrNoBackend.
type NoBackendError struct {
	Target string // registry name of the backend-less target
}

// Error names the backend-less target.
func (e *NoBackendError) Error() string {
	return fmt.Sprintf("diospyros: target %s has no assembly backend", e.Target)
}

// Unwrap makes errors.Is(err, ErrNoBackend) succeed.
func (e *NoBackendError) Unwrap() error { return ErrNoBackend }

// Run executes the primary target's compiled program on the simulator.
func (r *Result) Run(inputs map[string][]float64, funcs map[string]func([]float64) float64) (map[string][]float64, *sim.Result, error) {
	if r.Program == nil {
		name := isa.Default().Name
		if len(r.Targets) > 0 {
			name = r.Targets[0].Target
		}
		return nil, nil, &NoBackendError{Target: name}
	}
	return codegenExecute(r.Program, inputs, r.Kernel.Inputs, r.Kernel.Outputs, funcs)
}

// RunTarget executes the named target's compiled program on the simulator.
func (r *Result) RunTarget(target string, inputs map[string][]float64, funcs map[string]func([]float64) float64) (map[string][]float64, *sim.Result, error) {
	for i := range r.Targets {
		tr := &r.Targets[i]
		if tr.Target != target {
			continue
		}
		if tr.Program == nil {
			return nil, nil, &NoBackendError{Target: target}
		}
		return codegenExecute(tr.Program, inputs, r.Kernel.Inputs, r.Kernel.Outputs, funcs)
	}
	return nil, nil, fmt.Errorf("diospyros: result has no target %q", target)
}
