package diospyros

import (
	"context"
	"errors"
	"testing"
	"time"

	"diospyros/internal/egraph"
	"diospyros/internal/kernels"
	"diospyros/internal/pipeline"
)

// The quickstart saxpy kernel (examples/quickstart).
const quickstartSrc = `
kernel saxpy8(x[8], y[8], alpha[1]) -> (out[8]) {
    for i in 0..8 {
        out[i] = x[i] * alpha[0] + y[i];
    }
}
`

// TestCompileTraceQuickstart checks the telemetry contract on a
// quickstart-kernel compile: every executed stage has a span, stage
// durations sum to ≈ Result.Compile, and the per-rule apply counts in the
// iteration gauges reconcile exactly with Report.PerRule.
func TestCompileTraceQuickstart(t *testing.T) {
	opts := testOpts()
	opts.Validate = true
	res, err := CompileSourceContext(context.Background(), quickstartSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace")
	}

	wantStages := []string{StageLift, StageSaturate, StageExtract, StageLower, StageCodegen, StageValidate}
	if len(tr.Stages) != len(wantStages) {
		t.Fatalf("got %d spans %v, want %d", len(tr.Stages), tr.Stages, len(wantStages))
	}
	for i, name := range wantStages {
		if tr.Stages[i].Name != name {
			t.Errorf("stage %d = %s, want %s", i, tr.Stages[i].Name, name)
		}
	}

	// Stage durations sum to ≈ the end-to-end compile time: never more,
	// and the unattributed remainder is only inter-stage bookkeeping.
	sum := tr.StagesTotal()
	if sum > res.Compile {
		t.Errorf("stage sum %v exceeds compile time %v", sum, res.Compile)
	}
	if gap := res.Compile - sum; gap > 100*time.Millisecond {
		t.Errorf("unattributed time %v too large (stages %v of %v)", gap, sum, res.Compile)
	}
	if res.Compile != tr.Duration || res.AllocBytes != tr.AllocBytes {
		t.Errorf("Result totals (%v, %d) disagree with trace (%v, %d)",
			res.Compile, res.AllocBytes, tr.Duration, tr.AllocBytes)
	}

	// Per-iteration gauges reconcile with the saturation report.
	if len(tr.Iterations) != res.Saturation.Iterations {
		t.Fatalf("%d gauges for %d iterations", len(tr.Iterations), res.Saturation.Iterations)
	}
	per := tr.PerRuleApplied()
	if len(per) != len(res.Saturation.PerRule) {
		t.Fatalf("per-rule gauge names %v vs report %v", per, res.Saturation.PerRule)
	}
	for name, n := range res.Saturation.PerRule {
		if per[name] != n {
			t.Errorf("rule %s: trace says %d applies, report says %d", name, per[name], n)
		}
	}
	g, ok := tr.FinalGauge()
	if !ok || g.Nodes != res.Saturation.Nodes || g.Classes != res.Saturation.Classes {
		t.Errorf("final gauge %+v disagrees with report (%d nodes, %d classes)",
			g, res.Saturation.Nodes, res.Saturation.Classes)
	}
	if tr.StopReason != string(res.Saturation.Reason) {
		t.Errorf("trace stop reason %q vs report %q", tr.StopReason, res.Saturation.Reason)
	}
}

// Validation off ⇒ no validate span; compiling a pre-lifted kernel ⇒ no
// lift span.
func TestCompileTraceSkipsUnusedStages(t *testing.T) {
	res, err := Compile(kernels.MatMul(2, 2, 2), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Trace.Stage(StageValidate); ok {
		t.Error("validate span present without Options.Validate")
	}
	if _, ok := res.Trace.Stage(StageLift); ok {
		t.Error("lift span present for a pre-lifted kernel")
	}
	if _, ok := res.Trace.Stage(StageSaturate); !ok {
		t.Error("saturate span missing")
	}
}

func TestCompileContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileContext(ctx, kernels.MatMul(2, 2, 2), testOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *pipeline.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err %v is not a StageError", err)
	}
}

// Cancelling mid-saturation aborts the compile with an error wrapping
// context.Canceled, attributed to the saturate stage, promptly.
func TestCompileContextCancelledMidSaturation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// The largest suite kernel: saturation runs for far longer than the
	// cancellation delay, so the cancel lands mid-saturation.
	_, err := CompileContext(ctx, kernels.MatMul(16, 16, 16), testOpts())
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("kernel compiled before the cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *pipeline.StageError
	if !errors.As(err, &se) || se.Stage != StageSaturate {
		t.Fatalf("err = %v, want saturate StageError", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
}

// Options.Timeout expiring is NOT a cancellation: the partially saturated
// e-graph still extracts and produces code (the Figure 6 contract).
func TestCompileSaturationTimeoutStillEmitsCode(t *testing.T) {
	opts := testOpts()
	opts.Timeout = time.Millisecond
	res, err := Compile(kernels.MatMul(10, 10, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturation.Reason == egraph.StopCancelled {
		t.Fatalf("internal timeout misreported as cancellation")
	}
	if res.C == "" || res.VIR == nil {
		t.Fatal("timed-out compile produced no code")
	}
}
