package diospyros

import (
	"sort"

	"diospyros/internal/egraph"
	"diospyros/internal/extract"
	"diospyros/internal/sim"
	"diospyros/internal/telemetry"
)

// The flight-recorder glue: folds the raw search journal (internal/egraph)
// and the extraction decision trace (internal/extract) into the
// trace-serializable telemetry types, which is what the -report HTML, the
// -json trace, and diosserve's SSE stream all consume.

// searchTraceFromJournal aggregates the journal into per-rule attribution,
// the ban timeline, and the best-cost trajectory.
func searchTraceFromJournal(j *egraph.Journal) *telemetry.SearchTrace {
	if j == nil {
		return nil
	}
	st := &telemetry.SearchTrace{Events: j.Total(), EventsDropped: j.Dropped()}
	rules := map[string]*telemetry.RuleAttribution{}
	order := []string{}
	ruleFor := func(name string) *telemetry.RuleAttribution {
		r := rules[name]
		if r == nil {
			r = &telemetry.RuleAttribution{Rule: name}
			rules[name] = r
			order = append(order, name)
		}
		return r
	}
	for _, ev := range j.Events() {
		switch ev.Kind {
		case egraph.JournalRule:
			r := ruleFor(ev.Rule)
			r.Matches += ev.Matches
			r.Applied += ev.Applied
			r.NewNodes += ev.NewNodes
			r.Duration += ev.Duration
		case egraph.JournalBan:
			r := ruleFor(ev.Rule)
			r.Bans++
			r.Matches += ev.Matches
			r.Duration += ev.Duration
			st.Bans = append(st.Bans, telemetry.BanSpan{
				Rule: ev.Rule, Iteration: ev.Iteration, Until: ev.BannedUntil,
				Matches: ev.Matches, Bans: ev.Bans,
			})
		case egraph.JournalCost:
			st.BestCost = append(st.BestCost, telemetry.CostPoint{
				Iteration: ev.Iteration, Cost: ev.Cost,
			})
		}
	}
	for _, name := range order {
		st.Rules = append(st.Rules, *rules[name])
	}
	// Biggest node growth first — the rules that grew the e-graph are the
	// ones a saturation blowup post-mortem needs on top.
	sort.SliceStable(st.Rules, func(i, k int) bool {
		if st.Rules[i].NewNodes != st.Rules[k].NewNodes {
			return st.Rules[i].NewNodes > st.Rules[k].NewNodes
		}
		return st.Rules[i].Matches > st.Rules[k].Matches
	})
	return st
}

// memoryTraceFromReport converts the saturation report's peak footprint
// into the trace-serializable memory record (telemetry cannot import the
// e-graph without a cycle). The heap-sampler fields are filled by compile.
func memoryTraceFromReport(rep egraph.Report) *telemetry.MemoryTrace {
	fp := rep.PeakFootprint
	mt := &telemetry.MemoryTrace{
		PeakBytes:     fp.Total,
		PeakIteration: rep.PeakIteration,
	}
	for _, c := range []struct {
		name string
		comp egraph.FootprintComponent
	}{
		{"e-nodes", fp.Nodes},
		{"hashcons", fp.Hashcons},
		{"symbols", fp.Symbols},
		{"union-find", fp.UnionFind},
		{"classes", fp.Classes},
		{"parents", fp.Parents},
		{"provenance", fp.Provenance},
		{"journal", fp.Journal},
	} {
		if c.comp.Entries == 0 && c.comp.Bytes == 0 {
			continue
		}
		mt.Components = append(mt.Components, telemetry.MemoryComponent{
			Name: c.name, Entries: c.comp.Entries, Bytes: c.comp.Bytes,
		})
	}
	return mt
}

// extractionTrace builds the extraction flight record for the chosen
// program rooted at root.
func extractionTrace(ex *extract.Extractor, root egraph.ClassID) *telemetry.ExtractionTrace {
	if ex == nil {
		return nil
	}
	ds := ex.Decisions(root)
	mc := ex.Movement(root)
	et := &telemetry.ExtractionTrace{
		TotalCost:   ex.Cost(root),
		Classes:     len(ds),
		Literal:     mc.Literal,
		Contiguous:  mc.Contiguous,
		Shuffles:    mc.Shuffles,
		Selects:     mc.Selects,
		Gathers:     mc.Gathers,
		ScalarLanes: mc.ScalarLanes,
	}
	for _, d := range ds {
		if d.Contested() {
			et.Contested++
		}
		if len(et.Decisions) < telemetry.MaxDecisions {
			et.Decisions = append(et.Decisions, telemetry.ExtractionDecision{
				Class: int(d.Class), Winner: d.Winner,
				WinnerCost: d.WinnerCost, WinnerOwn: d.WinnerOwn,
				RunnerUp: d.RunnerUp, RunnerUpCost: d.RunnerUpCost,
				Margin: d.Margin, Candidates: d.Candidates,
			})
		}
	}
	return et
}

// ReportCycleProfile converts a simulator cycle profile into the neutral
// form the telemetry HTML report renders as a waterfall (telemetry cannot
// import the simulator without a cycle).
func ReportCycleProfile(p *sim.Profile) *telemetry.CycleProfile {
	if p == nil {
		return nil
	}
	cp := &telemetry.CycleProfile{
		Total:        p.Cycles,
		OperandStall: p.OperandStall,
		MemoryStall:  p.MemoryStall,
		BranchBubble: p.BranchBubble,
	}
	for _, o := range p.Hotspots(0) {
		cp.Rows = append(cp.Rows, telemetry.CycleRow{
			Name: o.Op, Count: o.Count, Cycles: o.Cycles, Stall: o.Stall,
		})
	}
	return cp
}
