package diospyros_test

// Benchmark harness: one testing.B benchmark per table/figure in the
// paper's evaluation (§5). Simulated-cycle results are attached as custom
// metrics (`cycles`, `speedup`), since the quantity the paper reports is
// deterministic simulated cycles, not host wall-clock.
//
//	go test -bench=. -benchmem
//
// The cmd/diosbench binary prints the same data as formatted tables.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	diospyros "diospyros"
	"diospyros/internal/bench"
	"diospyros/internal/kernels"
	"diospyros/internal/theia"
)

func benchOpts() diospyros.Options {
	return diospyros.Options{Timeout: 60 * time.Second, NodeLimit: 1_000_000}
}

// BenchmarkTable1Compile measures end-to-end compilation (symbolic
// evaluation, equality saturation, extraction, lowering, code generation)
// for representative Table 1 kernels.
func BenchmarkTable1Compile(b *testing.B) {
	for _, c := range []struct {
		name string
		mk   func() *diospyros.Result
	}{
		{"2DConv3x5_3x3", func() *diospyros.Result { r, _ := diospyros.Compile(kernels.Conv2D(3, 5, 3, 3), benchOpts()); return r }},
		{"MatMul3x3", func() *diospyros.Result { r, _ := diospyros.Compile(kernels.MatMul(3, 3, 3), benchOpts()); return r }},
		{"MatMul10x10", func() *diospyros.Result { r, _ := diospyros.Compile(kernels.MatMul(10, 10, 10), benchOpts()); return r }},
		{"QProd", func() *diospyros.Result { r, _ := diospyros.Compile(kernels.QProd(), benchOpts()); return r }},
		{"QRDecomp3x3", func() *diospyros.Result { r, _ := diospyros.Compile(kernels.QRDecomp(3), benchOpts()); return r }},
	} {
		b.Run(c.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				res := c.mk()
				if res == nil {
					b.Fatal("compile failed")
				}
				nodes = res.Saturation.Nodes
			}
			b.ReportMetric(float64(nodes), "e-nodes")
		})
	}
}

// BenchmarkFigure5Kernels reports simulated cycles for each system on
// representative kernels (the full 21-kernel figure comes from diosbench).
func BenchmarkFigure5Kernels(b *testing.B) {
	for _, only := range []string{"2DConv 3x5 3x3", "MatMul 4x4 4x4", "QProd"} {
		b.Run(only, func(b *testing.B) {
			var rows []bench.F5Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = bench.Figure5(bench.F5Options{Opts: benchOpts(), Only: only})
				if err != nil {
					b.Fatal(err)
				}
			}
			if len(rows) == 1 {
				r := rows[0]
				b.ReportMetric(float64(r.Cycles.Diospyros), "dios-cycles")
				b.ReportMetric(float64(r.Cycles.NaiveFixed), "fixed-cycles")
				b.ReportMetric(r.Speedup(r.Cycles.Diospyros), "speedup")
			}
		})
	}
}

// BenchmarkFigure5Geomean reproduces the headline number over the whole
// suite (expensive; dominated by the 16×16 kernels).
func BenchmarkFigure5Geomean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure5(bench.F5Options{Opts: benchOpts()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.GeomeanVsBestBaseline(rows), "geomean-speedup")
	}
}

// BenchmarkFigure6Timeout sweeps the equality-saturation budget for the
// 10×10·10×10 MatMul and reports resulting kernel cycles per budget.
func BenchmarkFigure6Timeout(b *testing.B) {
	for _, iters := range []int{1, 2, 4, 8, 30} {
		b.Run(fmt.Sprintf("budget-%d-iters", iters), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				rows, err := bench.Figure6Iterations([]int{iters})
				if err != nil {
					b.Fatal(err)
				}
				cycles = rows[0].Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkExpertComparison reports the §5.4 gap against the hand-tuned
// 2×3·3×3 kernel.
func BenchmarkExpertComparison(b *testing.B) {
	var res *bench.ExpertResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Expert(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DiospyrosCycles), "dios-cycles")
	b.ReportMetric(float64(res.ExpertCycles), "expert-cycles")
	b.ReportMetric(res.GapPercent, "gap-%")
}

// BenchmarkAblationNoVector reports the §5.6 scalar-rules-only ablation on
// a representative kernel.
func BenchmarkAblationNoVector(b *testing.B) {
	l := kernels.MatMul(4, 4, 4)
	r := rand.New(rand.NewSource(5))
	in := map[string][]float64{"a": make([]float64, 16), "b": make([]float64, 16)}
	for _, s := range in {
		for i := range s {
			s[i] = r.Float64()
		}
	}
	run := func(disable bool) int64 {
		opts := benchOpts()
		opts.DisableVectorRules = disable
		res, err := diospyros.Compile(l, opts)
		if err != nil {
			b.Fatal(err)
		}
		_, sres, err := res.Run(in, nil)
		if err != nil {
			b.Fatal(err)
		}
		return sres.Cycles
	}
	var vec, scalar int64
	for i := 0; i < b.N; i++ {
		vec = run(false)
		scalar = run(true)
	}
	b.ReportMetric(float64(vec), "vector-cycles")
	b.ReportMetric(float64(scalar), "scalar-cycles")
}

// BenchmarkTheiaCaseStudy reports the §5.7 end-to-end application numbers.
func BenchmarkTheiaCaseStudy(b *testing.B) {
	var res *bench.TheiaResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Theia()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.EigenTotal), "eigen-cycles")
	b.ReportMetric(float64(res.DiospyrosTotal), "dios-cycles")
	b.ReportMetric(res.Speedup, "speedup")
}

// BenchmarkTranslationValidation measures the §3.4 validator on the kernel
// whose output it checks exactly.
func BenchmarkTranslationValidation(b *testing.B) {
	opts := benchOpts()
	opts.Validate = true
	for i := 0; i < b.N; i++ {
		if _, err := diospyros.Compile(kernels.MatMul(3, 3, 3), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulator throughput (instructions/s) on
// a vectorized kernel, for context on harness overheads.
func BenchmarkSimulator(b *testing.B) {
	res, err := diospyros.Compile(kernels.MatMul(8, 8, 8), benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	in := map[string][]float64{"a": make([]float64, 64), "b": make([]float64, 64)}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		_, sres, err := res.Run(in, nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs = sres.Instrs
	}
	b.ReportMetric(float64(instrs), "sim-instrs")
}

// BenchmarkTheiaDecomposeRef is the host-reference decomposition, for
// calibrating the simulator-vs-host gap.
func BenchmarkTheiaDecomposeRef(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	p := make([]float64, 12)
	for i := range p {
		p[i] = r.Float64()*4 - 2
	}
	for i := 0; i < b.N; i++ {
		theia.DecomposeRef(p)
	}
}
