package diospyros

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"diospyros/internal/expr"
	"diospyros/internal/kernel"
	"diospyros/internal/kernels"
)

func testOpts() Options {
	return Options{Timeout: 20 * time.Second, NodeLimit: 300_000, MaxIterations: 30}
}

func randIn(r *rand.Rand, l *kernel.Lifted) map[string][]float64 {
	in := map[string][]float64{}
	for _, d := range l.Inputs {
		arr := make([]float64, d.Len())
		for i := range arr {
			arr[i] = r.Float64()*4 - 2
		}
		in[d.Name] = arr
	}
	return in
}

// checkCompiled compiles a lifted kernel and verifies the simulated outputs
// against direct evaluation of the specification.
func checkCompiled(t *testing.T, l *kernel.Lifted, opts Options) *Result {
	t.Helper()
	res, err := Compile(l, opts)
	if err != nil {
		t.Fatalf("%s: compile: %v", l.Name, err)
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		in := randIn(r, l)
		got, _, err := res.Run(in, nil)
		if err != nil {
			t.Fatalf("%s: run: %v", l.Name, err)
		}
		env := expr.NewEnv()
		for k, v := range in {
			env.Arrays[k] = v
		}
		want, err := l.Spec.Eval(env)
		if err != nil {
			t.Fatalf("%s: spec eval: %v", l.Name, err)
		}
		flat := want.AsSlice()
		idx := 0
		for _, d := range l.Outputs {
			for i := 0; i < d.Len(); i++ {
				w := flat[idx]
				g := got[d.Name][i]
				if math.Abs(w-g) > 1e-6*math.Max(1, math.Abs(w)) {
					t.Fatalf("%s: output %s[%d] = %g, want %g", l.Name, d.Name, i, g, w)
				}
				idx++
			}
		}
	}
	return res
}

func TestCompileVectorAddEndToEnd(t *testing.T) {
	src := `
kernel vadd(a[8], b[8]) -> (c[8]) {
    for i in 0..8 {
        c[i] = a[i] + b[i];
    }
}
`
	res, err := CompileSource(src, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturation.Saturated() {
		t.Errorf("vadd did not saturate: %+v", res.Saturation)
	}
	// Fully vectorized: 2 chunks, each one VAdd; no scalar arithmetic.
	if !strings.Contains(res.C, "PDX_ADD_MXF32") {
		t.Errorf("C output missing vector add:\n%s", res.C)
	}
	if strings.Contains(res.C, " + ") && strings.Contains(res.C, "float s_") {
		t.Errorf("C output contains scalar adds:\n%s", res.C)
	}
	checkCompiled(t, res.Kernel, testOpts())
}

func TestCompileMatMulSizes(t *testing.T) {
	for _, sz := range [][3]int{{2, 2, 2}, {2, 3, 3}, {3, 3, 3}, {4, 4, 4}} {
		l := kernels.MatMul(sz[0], sz[1], sz[2])
		res := checkCompiled(t, l, testOpts())
		// Vectorization should remove all scalar multiplies.
		if strings.Contains(res.C, "float s_") && strings.Contains(res.C, " * ") {
			t.Errorf("%s: scalar multiplies remain in generated code", l.Name)
		}
	}
}

func TestCompileConv2DSizes(t *testing.T) {
	for _, sz := range [][4]int{{3, 3, 2, 2}, {3, 5, 3, 3}} {
		l := kernels.Conv2D(sz[0], sz[1], sz[2], sz[3])
		checkCompiled(t, l, testOpts())
	}
}

func TestCompileQProd(t *testing.T) {
	l := kernels.QProd()
	res := checkCompiled(t, l, testOpts())
	if res.Program == nil {
		t.Fatal("no program")
	}
}

func TestCompileQRDecomp2x2(t *testing.T) {
	l := kernels.QRDecomp(2)
	checkCompiled(t, l, testOpts())
}

func TestCompileQRDecomp3x3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	l := kernels.QRDecomp(3)
	opts := testOpts()
	opts.Timeout = 30 * time.Second
	checkCompiled(t, l, opts)
}

func TestCompileWithValidation(t *testing.T) {
	l := kernels.MatMul(2, 3, 3)
	opts := testOpts()
	opts.Validate = true
	res, err := Compile(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Validated {
		t.Fatal("Validated flag not set")
	}
}

func TestCompileScalarAblation(t *testing.T) {
	// §5.6: vector rules disabled still produces correct (scalar) code.
	l := kernels.MatMul(2, 3, 3)
	opts := testOpts()
	opts.DisableVectorRules = true
	res := checkCompiled(t, l, opts)
	if strings.Contains(res.C, "PDX_") && strings.Contains(res.C, "MAC") {
		t.Errorf("scalar ablation produced vector code")
	}
	// The vectorized version should simulate faster.
	vec, err := Compile(l, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	in := randIn(r, l)
	_, sres, err := res.Run(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, vres, err := vec.Run(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vres.Cycles >= sres.Cycles {
		t.Errorf("vectorized (%d cycles) not faster than scalar (%d cycles)", vres.Cycles, sres.Cycles)
	}
}

func TestCompileUninterpretedFunction(t *testing.T) {
	// The §6 extension path: a kernel using a custom target function.
	src := `
kernel recip4(a[4]) -> (o[4]) {
    for i in 0..4 {
        o[i] = recip(a[i]);
    }
}
`
	res, err := CompileSource(src, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.C, "recip") {
		t.Fatalf("C output missing recip call:\n%s", res.C)
	}
	funcs := map[string]func([]float64) float64{
		"recip": func(args []float64) float64 { return 1 / args[0] },
	}
	in := map[string][]float64{"a": {1, 2, 4, 8}}
	got, _, err := res.Run(in, funcs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if got["o"][i] != want[i] {
			t.Fatalf("o[%d] = %g, want %g", i, got["o"][i], want[i])
		}
	}
	// The vectorizer should have turned it into a single vector call.
	if !strings.Contains(res.C, "recip_v(") {
		t.Errorf("recip not vectorized:\n%s", res.C)
	}
}

func TestCompileReportsStats(t *testing.T) {
	l := kernels.MatMul(2, 2, 2)
	res, err := Compile(l, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Compile <= 0 || res.AllocBytes == 0 || res.Saturation.Nodes == 0 {
		t.Fatalf("missing stats: %+v", res)
	}
	if res.Cost <= 0 {
		t.Fatalf("cost = %g", res.Cost)
	}
}

func TestCompileTimeoutStillEmitsCode(t *testing.T) {
	// §3.4/§5.5: a timed-out search still extracts a valid program.
	l := kernels.MatMul(4, 4, 4)
	opts := testOpts()
	opts.MaxIterations = 1 // stop long before vectorization completes
	res := checkCompiled(t, l, opts)
	if res.Saturation.Saturated() {
		t.Skip("saturated in one iteration; nothing to check")
	}
}

// TestPipelinePropertyRandomKernels pushes randomly generated kernels
// (ragged sums of products with shared subterms, the paper's problem
// shape) through the complete pipeline — lift, saturate, extract, lower,
// codegen, simulate — and compares against direct evaluation of the spec.
func TestPipelinePropertyRandomKernels(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		b := kernel.NewBuilder(fmt.Sprintf("fuzz%d", trial))
		na, nb := 4+r.Intn(8), 4+r.Intn(8)
		A := b.InputVec("a", na)
		B := b.InputVec("b", nb)
		nOut := 1 + r.Intn(9)
		O := b.OutputVec("o", nOut)
		for i := 0; i < nOut; i++ {
			acc := kernel.Const(0)
			terms := 1 + r.Intn(5)
			for k := 0; k < terms; k++ {
				p := kernel.Mul(A.AtVec(r.Intn(na)), B.AtVec(r.Intn(nb)))
				switch r.Intn(3) {
				case 0:
					acc = kernel.Add(acc, p)
				case 1:
					acc = kernel.Sub(acc, p)
				default:
					acc = kernel.Add(acc, kernel.Mul(p, kernel.Const(float64(1+r.Intn(3)))))
				}
			}
			O.SetVec(i, acc)
		}
		l := b.Lift()
		opts := testOpts()
		opts.Validate = true
		checkCompiled(t, l, opts)
	}
}
